package osnhttp

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"hsprofiler/internal/obs/evlog"
	"hsprofiler/internal/osn"
	"hsprofiler/internal/sim"
)

// JSONClient consumes the /api/v1 wire instead of scraping HTML. It
// implements the same crawler-facing surface as Client with identical
// request granularity and error semantics, so an attack run over JSON is
// request-for-request — and therefore Tables 2–4 — identical to the HTML
// path (proven end to end in internal/experiments).
//
// Damage classification mirrors the HTML parser: a body that is not valid
// JSON, is missing its container, or whose "n" count disagrees with the
// rows delivered is ErrMalformed — transient, so the crawler retries it.
type JSONClient struct {
	base   string
	hc     *http.Client
	pacer  Pacer
	tokens []string
	seed   uint64
	lg     *evlog.Logger
}

// NewJSONClient returns a client for the JSON API at base. hc may be nil
// for http.DefaultClient; pacer may be nil for NoPace.
func NewJSONClient(base string, hc *http.Client, pacer Pacer) *JSONClient {
	if hc == nil {
		hc = http.DefaultClient
	}
	if pacer == nil {
		pacer = NoPace{}
	}
	return &JSONClient{base: strings.TrimRight(base, "/"), hc: hc, pacer: pacer, seed: 1}
}

// WithSeed sets the request-id seed (default 1). Two clients with the
// same seed mint identical ids for identical paths, which is what makes
// id sequences reproducible across runs. Returns c for chaining.
func (c *JSONClient) WithSeed(seed uint64) *JSONClient {
	c.seed = seed
	return c
}

// WithLog attaches an event logger: every request emits one "wire" event
// carrying the request id, path, status and latency — the attacker-side
// half of the cross-process join runreport performs against the server's
// access log. Returns c for chaining.
func (c *JSONClient) WithLog(lg *evlog.Logger) *JSONClient {
	c.lg = lg
	return c
}

// wire shapes. Container members stay json.RawMessage so an absent
// container is distinguishable from an empty one — the JSON analogue of
// validatePage's id="container" check.
type (
	wireEnvelope struct {
		Error *struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	wireRow struct {
		ID   string `json:"id"`
		Name string `json:"name"`
	}
	wirePage struct {
		N       int             `json:"n"`
		Results json.RawMessage `json:"results"`
		Friends json.RawMessage `json:"friends"`
		Schools json.RawMessage `json:"schools"`
		More    bool            `json:"more"`
	}
	wireSchool struct {
		ID   int    `json:"id"`
		Name string `json:"name"`
		City string `json:"city"`
	}
	wireProfile struct {
		ID                string `json:"id"`
		Name              string `json:"name"`
		HasPhoto          bool   `json:"has_photo"`
		Gender            string `json:"gender"`
		Network           string `json:"network"`
		HighSchool        string `json:"high_school"`
		GradYear          int    `json:"grad_year"`
		GradSchool        bool   `json:"grad_school"`
		Relationship      bool   `json:"relationship"`
		InterestedIn      bool   `json:"interested_in"`
		Birthday          string `json:"birthday"`
		Hometown          string `json:"hometown"`
		CurrentCity       string `json:"current_city"`
		FriendListVisible bool   `json:"friend_list_visible"`
		PhotoCount        int    `json:"photo_count"`
		ContactInfo       bool   `json:"contact_info"`
		CanMessage        bool   `json:"can_message"`
		Searchable        bool   `json:"searchable"`
	}
)

// malformed wraps a body-damage description in the transient sentinel.
func malformed(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrMalformed, fmt.Sprintf(format, args...))
}

// apiStatusErr maps a non-200 API response onto platform errors. The
// envelope's machine code is authoritative when the body carries one;
// a damaged or non-JSON error body falls back to the status code alone,
// which the HTML client's mapping already covers.
func apiStatusErr(code int, body []byte) error {
	var env wireEnvelope
	if err := json.Unmarshal(body, &env); err == nil && env.Error != nil {
		switch env.Error.Code {
		case "unauthorized":
			return osn.ErrUnauthorized
		case "suspended":
			return osn.ErrSuspended
		case "throttled", "overload":
			return osn.ErrThrottled
		case "underage":
			return osn.ErrUnderage
		case "not_found":
			return osn.ErrNotFound
		case "hidden":
			return osn.ErrHidden
		default:
			return fmt.Errorf("osnhttp: api error %q (HTTP %d): %s", env.Error.Code, code, env.Error.Message)
		}
	}
	return statusErr(code, string(body))
}

// get fetches an API page, stamped with its deterministic request id.
// The body is always read in full — even on error statuses — so the
// connection returns to the keep-alive pool.
func (c *JSONClient) get(path string) ([]byte, error) {
	c.pacer.Pause()
	req, err := http.NewRequest(http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	id := requestID(c.seed, path)
	req.Header[RequestIDHeader] = []string{id}
	start := time.Now()
	resp, err := c.hc.Do(req)
	if err != nil {
		if c.lg.On(evlog.Warn) {
			c.lg.Warn(context.Background(), "wire", "request failed",
				evlog.Str("id", id), evlog.Str("path", path), evlog.Err("err", err))
		}
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if c.lg.On(evlog.Info) {
		c.lg.Info(context.Background(), "wire", "request",
			evlog.Str("id", id), evlog.Str("path", path),
			evlog.Int("code", resp.StatusCode), evlog.Dur("ms", time.Since(start)))
	}
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiStatusErr(resp.StatusCode, body)
	}
	return body, nil
}

// RegisterAccounts creates n fake adult accounts, like Client's.
func (c *JSONClient) RegisterAccounts(n int) error {
	for i := 0; i < n; i++ {
		form := url.Values{
			"name":  {fmt.Sprintf("crawler%d", len(c.tokens))},
			"birth": {"1985-01-01"},
		}
		resp, err := c.hc.PostForm(c.base+"/api/v1/register", form)
		if err != nil {
			return err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return apiStatusErr(resp.StatusCode, body)
		}
		var tok struct {
			Token string `json:"token"`
		}
		if err := json.Unmarshal(body, &tok); err != nil || tok.Token == "" {
			return malformed("register response %q", body)
		}
		c.tokens = append(c.tokens, tok.Token)
	}
	return nil
}

// Accounts reports how many fake accounts the client holds.
func (c *JSONClient) Accounts() int { return len(c.tokens) }

func (c *JSONClient) token(acct int) (string, error) {
	if acct < 0 || acct >= len(c.tokens) {
		return "", fmt.Errorf("osnhttp: account %d not registered (have %d)", acct, len(c.tokens))
	}
	return c.tokens[acct], nil
}

// parsePage decodes one list page, validating the container and the row
// count cross-check.
func parsePage(body []byte, key string) ([]wireRow, bool, error) {
	var page wirePage
	if err := json.Unmarshal(body, &page); err != nil {
		return nil, false, malformed("invalid JSON: %v", err)
	}
	container := page.Results
	if key == "friends" {
		container = page.Friends
	}
	if container == nil {
		return nil, false, malformed("missing %q container", key)
	}
	var rows []wireRow
	if err := json.Unmarshal(container, &rows); err != nil {
		return nil, false, malformed("bad %q rows: %v", key, err)
	}
	if page.N != len(rows) {
		return nil, false, malformed("row count mismatch: n=%d, got %d", page.N, len(rows))
	}
	return rows, page.More, nil
}

func toResults(rows []wireRow) []osn.SearchResult {
	var out []osn.SearchResult
	for _, r := range rows {
		out = append(out, osn.SearchResult{ID: osn.PublicID(r.ID), Name: r.Name})
	}
	return out
}

// LookupSchool resolves a school by exact name via the directory, scanning
// client-side like the HTML client does.
func (c *JSONClient) LookupSchool(name string) (osn.SchoolRef, error) {
	body, err := c.get("/api/v1/schools")
	if err != nil {
		return osn.SchoolRef{}, err
	}
	var page wirePage
	if err := json.Unmarshal(body, &page); err != nil {
		return osn.SchoolRef{}, malformed("invalid JSON: %v", err)
	}
	if page.Schools == nil {
		return osn.SchoolRef{}, malformed("missing %q container", "schools")
	}
	var schools []wireSchool
	if err := json.Unmarshal(page.Schools, &schools); err != nil {
		return osn.SchoolRef{}, malformed("bad school rows: %v", err)
	}
	if page.N != len(schools) {
		return osn.SchoolRef{}, malformed("row count mismatch: n=%d, got %d", page.N, len(schools))
	}
	for _, s := range schools {
		if s.Name == name {
			return osn.SchoolRef{ID: s.ID, Name: s.Name, City: s.City}, nil
		}
	}
	return osn.SchoolRef{}, osn.ErrNoSchool
}

// Search fetches one page of school search results via the acct-th account.
func (c *JSONClient) Search(acct, schoolID, page int) ([]osn.SearchResult, bool, error) {
	tok, err := c.token(acct)
	if err != nil {
		return nil, false, err
	}
	body, err := c.get(fmt.Sprintf("/api/v1/search?school=%d&page=%d&acct=%s", schoolID, page, url.QueryEscape(tok)))
	if err != nil {
		return nil, false, err
	}
	rows, more, err := parsePage(body, "results")
	if err != nil {
		return nil, false, err
	}
	return toResults(rows), more, nil
}

// CitySearch fetches one page of the by-city people search.
func (c *JSONClient) CitySearch(acct int, city string, page int) ([]osn.SearchResult, bool, error) {
	tok, err := c.token(acct)
	if err != nil {
		return nil, false, err
	}
	body, err := c.get(fmt.Sprintf("/api/v1/search?city=%s&page=%d&acct=%s",
		url.QueryEscape(city), page, url.QueryEscape(tok)))
	if err != nil {
		return nil, false, err
	}
	rows, more, err := parsePage(body, "results")
	if err != nil {
		return nil, false, err
	}
	return toResults(rows), more, nil
}

// GraphSearch runs a structured Graph-Search-style query.
func (c *JSONClient) GraphSearch(acct int, q osn.GraphQuery, page int) ([]osn.SearchResult, bool, error) {
	tok, err := c.token(acct)
	if err != nil {
		return nil, false, err
	}
	current := "0"
	if q.CurrentStudents {
		current = "1"
	}
	body, err := c.get(fmt.Sprintf(
		"/api/v1/search?graph=1&school=%d&current=%s&after=%d&before=%d&city=%s&page=%d&acct=%s",
		q.SchoolID, current, q.GradYearAfter, q.GradYearBefore,
		url.QueryEscape(q.City), page, url.QueryEscape(tok)))
	if err != nil {
		return nil, false, err
	}
	rows, more, err := parsePage(body, "results")
	if err != nil {
		return nil, false, err
	}
	return toResults(rows), more, nil
}

// Profile fetches and decodes a public profile.
func (c *JSONClient) Profile(acct int, id osn.PublicID) (*osn.PublicProfile, error) {
	tok, err := c.token(acct)
	if err != nil {
		return nil, err
	}
	body, err := c.get(fmt.Sprintf("/api/v1/profile/%s?acct=%s", url.PathEscape(string(id)), url.QueryEscape(tok)))
	if err != nil {
		return nil, err
	}
	var outer struct {
		Profile *wireProfile `json:"profile"`
	}
	if err := json.Unmarshal(body, &outer); err != nil {
		return nil, malformed("invalid JSON: %v", err)
	}
	if outer.Profile == nil {
		return nil, malformed("missing %q container", "profile")
	}
	wp := outer.Profile
	// The profile's ID comes from the request, exactly as parseProfile
	// does for HTML — the body's copy is redundant on a healthy wire.
	pp := &osn.PublicProfile{
		ID:                id,
		Name:              wp.Name,
		HasPhoto:          wp.HasPhoto,
		Gender:            wp.Gender,
		Network:           wp.Network,
		HighSchool:        wp.HighSchool,
		GradYear:          wp.GradYear,
		GradSchool:        wp.GradSchool,
		Relationship:      wp.Relationship,
		InterestedIn:      wp.InterestedIn,
		Hometown:          wp.Hometown,
		CurrentCity:       wp.CurrentCity,
		FriendListVisible: wp.FriendListVisible,
		PhotoCount:        wp.PhotoCount,
		ContactInfo:       wp.ContactInfo,
		CanMessage:        wp.CanMessage,
		Searchable:        wp.Searchable,
	}
	if wp.Birthday != "" {
		var d sim.Date
		if _, err := fmt.Sscanf(wp.Birthday, "%d-%d-%d", &d.Year, &d.Month, &d.Day); err == nil {
			pp.Birthday = &d
		}
	}
	return pp, nil
}

// FriendPage fetches one page of a friend list.
func (c *JSONClient) FriendPage(acct int, id osn.PublicID, page int) ([]osn.FriendRef, bool, error) {
	tok, err := c.token(acct)
	if err != nil {
		return nil, false, err
	}
	body, err := c.get(fmt.Sprintf("/api/v1/friends/%s?page=%d&acct=%s", url.PathEscape(string(id)), page, url.QueryEscape(tok)))
	if err != nil {
		return nil, false, err
	}
	rows, more, err := parsePage(body, "friends")
	if err != nil {
		return nil, false, err
	}
	var out []osn.FriendRef
	for _, r := range rows {
		out = append(out, osn.FriendRef{ID: osn.PublicID(r.ID), Name: r.Name})
	}
	return out, more, nil
}
