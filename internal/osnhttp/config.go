package osnhttp

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// ServerConfig carries the production hygiene knobs for a serving listener:
// socket timeouts (a slow or stalled client must never pin a connection
// forever), the graceful-drain grace period, and the per-endpoint-family
// concurrency caps. The zero value is invalid on purpose — construct with
// DefaultServerConfig or call WithDefaults so every field is explicit.
type ServerConfig struct {
	// ReadHeaderTimeout bounds how long a connection may take to send the
	// request header (slowloris defense).
	ReadHeaderTimeout time.Duration
	// ReadTimeout bounds the whole request read, WriteTimeout the whole
	// response write, IdleTimeout how long a keep-alive connection may sit
	// between requests.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	IdleTimeout  time.Duration
	// ShutdownGrace is how long Drain waits for inflight requests before
	// abandoning them.
	ShutdownGrace time.Duration
	// SearchInflight / ProfileInflight / FriendInflight cap concurrent
	// in-handler requests per endpoint family; 0 means unlimited. Excess
	// requests are shed with a 503 overload envelope (see WithLimits).
	SearchInflight  int
	ProfileInflight int
	FriendInflight  int
}

// DefaultServerConfig returns the production defaults.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
		ShutdownGrace:     10 * time.Second,
	}
}

// WithDefaults fills zero timeout fields from DefaultServerConfig and
// leaves everything non-zero alone. Negative values are preserved so
// Validate can reject them rather than silently normalizing (the lesson
// of osn.Config's withDefaults hardening).
func (c ServerConfig) WithDefaults() ServerConfig {
	d := DefaultServerConfig()
	if c.ReadHeaderTimeout == 0 {
		c.ReadHeaderTimeout = d.ReadHeaderTimeout
	}
	if c.ReadTimeout == 0 {
		c.ReadTimeout = d.ReadTimeout
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = d.WriteTimeout
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = d.IdleTimeout
	}
	if c.ShutdownGrace == 0 {
		c.ShutdownGrace = d.ShutdownGrace
	}
	return c
}

// Validate rejects nonsensical configurations. All complaints are joined
// so a misconfigured deployment reports everything wrong at once.
func (c ServerConfig) Validate() error {
	var errs []error
	bad := func(format string, args ...any) { errs = append(errs, fmt.Errorf(format, args...)) }
	if c.ReadHeaderTimeout <= 0 {
		bad("read header timeout must be positive, got %v", c.ReadHeaderTimeout)
	}
	if c.ReadTimeout <= 0 {
		bad("read timeout must be positive, got %v", c.ReadTimeout)
	}
	if c.WriteTimeout <= 0 {
		bad("write timeout must be positive, got %v", c.WriteTimeout)
	}
	if c.IdleTimeout <= 0 {
		bad("idle timeout must be positive, got %v", c.IdleTimeout)
	}
	if c.ShutdownGrace <= 0 {
		bad("shutdown grace must be positive, got %v", c.ShutdownGrace)
	}
	if c.SearchInflight < 0 {
		bad("search inflight cap must be non-negative, got %d", c.SearchInflight)
	}
	if c.ProfileInflight < 0 {
		bad("profile inflight cap must be non-negative, got %d", c.ProfileInflight)
	}
	if c.FriendInflight < 0 {
		bad("friend inflight cap must be non-negative, got %d", c.FriendInflight)
	}
	return errors.Join(errs...)
}

// HTTPServer builds an *http.Server with the config's timeouts around the
// handler. The caller owns ListenAndServe/Serve and shutdown.
func (c ServerConfig) HTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: c.ReadHeaderTimeout,
		ReadTimeout:       c.ReadTimeout,
		WriteTimeout:      c.WriteTimeout,
		IdleTimeout:       c.IdleTimeout,
	}
}

// Drain gracefully stops srv: it stops accepting connections, waits up to
// ShutdownGrace for inflight requests (reported by the Server's accounting)
// to finish, and returns the number still running when it gave up (0 on a
// clean drain).
func (c ServerConfig) Drain(srv *http.Server, s *Server) (remaining int64, err error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.ShutdownGrace)
	defer cancel()
	err = srv.Shutdown(ctx)
	return s.Inflight(), err
}
