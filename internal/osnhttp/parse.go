package osnhttp

import (
	"fmt"
	"html"
	"strings"

	"hsprofiler/internal/osn"
)

// The crawler-side parser. The original study downloaded Facebook HTML and
// extracted fields with a custom parser; this one does the same against the
// simulator's pages. It scans for class-marked elements rather than building
// a DOM: the markers are a stable contract with the server templates, and
// the scanning tolerates reformatting around them.

// ErrMalformed reports a page that failed structural validation: truncated
// mid-transfer, garbled, or missing the container its endpoint always
// serves. Callers treat it as transient and refetch — a half-delivered
// friend-list page must never be mistaken for a short friend list. The
// sentinel value lives in osn so non-HTTP layers can classify it.
var ErrMalformed = osn.ErrMalformed

// pageTrailer closes every page the server emits; its absence means the
// body was cut off.
const pageTrailer = "</body></html>"

// validatePage checks the structural contract every well-formed page
// satisfies: the endpoint's container element is present and the document
// is complete. It returns an ErrMalformed-wrapped error otherwise.
func validatePage(body, container string) error {
	if !strings.Contains(body, `id="`+container+`"`) {
		return fmt.Errorf("%w: missing %q container", ErrMalformed, container)
	}
	if !strings.HasSuffix(strings.TrimRight(body, " \t\r\n"), pageTrailer) {
		return fmt.Errorf("%w: truncated body", ErrMalformed)
	}
	return nil
}

// classCount counts elements carrying the class marker. Row extractors
// compare it against what they parsed: a mismatch means rows were damaged,
// and the page is reported malformed instead of silently shortened.
func classCount(page, class string) int {
	return strings.Count(page, `class="`+class+`"`)
}

// checkRows verifies that every class-marked row yielded a parsed entry.
func checkRows(page, class string, parsed int) error {
	if n := classCount(page, class); n != parsed {
		return fmt.Errorf("%w: %d %q rows, parsed %d", ErrMalformed, n, class, parsed)
	}
	return nil
}

// classText returns the text content of every element whose class attribute
// equals class, e.g. classText(page, "name") over
// `<span class="name">Ann</span>` yields ["Ann"]. HTML entities are decoded.
func classText(page, class string) []string {
	marker := `class="` + class + `"`
	var out []string
	for i := 0; ; {
		j := strings.Index(page[i:], marker)
		if j < 0 {
			return out
		}
		i += j + len(marker)
		gt := strings.IndexByte(page[i:], '>')
		if gt < 0 {
			return out
		}
		start := i + gt + 1
		lt := strings.IndexByte(page[start:], '<')
		if lt < 0 {
			return out
		}
		out = append(out, html.UnescapeString(strings.TrimSpace(page[start:start+lt])))
		i = start + lt
	}
}

// firstClassText returns the first class-marked element's text, or "".
func firstClassText(page, class string) string {
	if all := classText(page, class); len(all) > 0 {
		return all[0]
	}
	return ""
}

// hasClass reports whether any element carries the class.
func hasClass(page, class string) bool {
	return strings.Contains(page, `class="`+class+`"`)
}

// classDataIDs returns the data-id attribute of every element with the
// class, e.g. `<div class="result" data-id="u12">`.
func classDataIDs(page, class string) []string {
	marker := `class="` + class + `"`
	var out []string
	for i := 0; ; {
		j := strings.Index(page[i:], marker)
		if j < 0 {
			return out
		}
		i += j + len(marker)
		end := strings.IndexByte(page[i:], '>')
		if end < 0 {
			return out
		}
		tagRest := page[i : i+end]
		const attr = `data-id="`
		if k := strings.Index(tagRest, attr); k >= 0 {
			v := tagRest[k+len(attr):]
			if q := strings.IndexByte(v, '"'); q >= 0 {
				out = append(out, html.UnescapeString(v[:q]))
			}
		}
		i += end
	}
}
