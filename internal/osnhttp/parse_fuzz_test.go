package osnhttp

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

// The parser consumes pages from a server it doesn't control (in the
// original study, Facebook's); it must never panic, and damaged pages must
// surface as typed ErrMalformed rather than silently shrinking results.

func TestParserOnMalformedPages(t *testing.T) {
	cases := []string{
		"",
		"<",
		`class="name"`,                    // marker with no tag close
		`<span class="name">unterminated`, // no closing <
		`<span class="name"`,              // tag never closes
		`<div class="result" data-id=>x</div>`,
		`<div class="result" data-id="u1>x</div>`, // unterminated attr
		`<div data-id="u1" class="result">late attr</div>`,
		strings.Repeat(`<span class="name">x</span>`, 1000),
		`<span class="gradyear">Class of notayear</span>`,
		`<span class="birthday">99-99</span>`,
		`<span class="photocount">NaN</span>`,
	}
	for i, page := range cases {
		// None of these may panic.
		_ = classText(page, "name")
		_ = classDataIDs(page, "result")
		_ = firstClassText(page, "gradyear")
		// None carries a complete profile container, so all must be
		// reported malformed rather than parsed into an empty profile.
		if _, err := parseProfile(page, "u"); !errors.Is(err, ErrMalformed) {
			t.Fatalf("case %d: want ErrMalformed, got %v", i, err)
		}
	}
	// data-id after class is not picked up only when the tag closed first;
	// same-tag late attributes still parse.
	ids := classDataIDs(`<div class="result" x="y" data-id="u9">ok</div>`, "result")
	if len(ids) != 1 || ids[0] != "u9" {
		t.Fatalf("late attr ids: %v", ids)
	}
}

func TestValidatePage(t *testing.T) {
	whole := `<html><body><div id="profile" data-id="u1"></div></body></html>`
	if err := validatePage(whole, "profile"); err != nil {
		t.Fatalf("intact page rejected: %v", err)
	}
	if err := validatePage(whole+"\n  ", "profile"); err != nil {
		t.Fatalf("trailing whitespace rejected: %v", err)
	}
	truncated := whole[:len(whole)-10]
	if err := validatePage(truncated, "profile"); !errors.Is(err, ErrMalformed) {
		t.Fatalf("truncated page accepted: %v", err)
	}
	if err := validatePage(whole, "friends"); !errors.Is(err, ErrMalformed) {
		t.Fatalf("wrong container accepted: %v", err)
	}
}

func TestCheckRowsDetectsDroppedRows(t *testing.T) {
	// Two marked rows, one with its data-id damaged: the old parser
	// silently returned a single row; now the page is malformed.
	page := `<html><body><ul id="friends">
<li class="friend" data-id="u1"><span class="name">A</span></li>
<li class="friend" data-id=><span class="name">B</span></li>
</ul></body></html>`
	ids := classDataIDs(page, "friend")
	if err := checkRows(page, "friend", len(ids)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("dropped row not reported: %v", err)
	}
}

func TestParserNeverPanicsOnRandomInput(t *testing.T) {
	prop := func(page string, class string) bool {
		if len(class) > 20 {
			class = class[:20]
		}
		_ = classText(page, class)
		_ = classDataIDs(page, class)
		_ = hasClass(page, class)
		_, _ = parseProfile(page, "u1")
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParseProfileIgnoresBadNumbers(t *testing.T) {
	body := `<html><body><div id="profile" data-id="u"><span class="gradyear">Class of banana</span>
<span class="birthday">not-a-date</span>
<span class="photocount">many</span></div></body></html>`
	pp, err := parseProfile(body, "u")
	if err != nil {
		t.Fatal(err)
	}
	if pp.GradYear != 0 || pp.Birthday != nil || pp.PhotoCount != 0 {
		t.Fatalf("bad numbers accepted: %+v", pp)
	}
}
