package osnhttp

import (
	"strings"
	"testing"
	"testing/quick"
)

// The parser consumes pages from a server it doesn't control (in the
// original study, Facebook's); it must never panic and must degrade to
// empty results on malformed input.

func TestParserOnMalformedPages(t *testing.T) {
	cases := []string{
		"",
		"<",
		`class="name"`,                    // marker with no tag close
		`<span class="name">unterminated`, // no closing <
		`<span class="name"`,              // tag never closes
		`<div class="result" data-id=>x</div>`,
		`<div class="result" data-id="u1>x</div>`, // unterminated attr
		`<div data-id="u1" class="result">late attr</div>`,
		strings.Repeat(`<span class="name">x</span>`, 1000),
		`<span class="gradyear">Class of notayear</span>`,
		`<span class="birthday">99-99</span>`,
		`<span class="photocount">NaN</span>`,
	}
	for i, page := range cases {
		// None of these may panic.
		_ = classText(page, "name")
		_ = classDataIDs(page, "result")
		_ = firstClassText(page, "gradyear")
		pp := parseProfile(page, "u")
		if pp == nil {
			t.Fatalf("case %d: nil profile", i)
		}
	}
	// data-id after class is not picked up only when the tag closed first;
	// same-tag late attributes still parse.
	ids := classDataIDs(`<div class="result" x="y" data-id="u9">ok</div>`, "result")
	if len(ids) != 1 || ids[0] != "u9" {
		t.Fatalf("late attr ids: %v", ids)
	}
}

func TestParserNeverPanicsOnRandomInput(t *testing.T) {
	prop := func(page string, class string) bool {
		if len(class) > 20 {
			class = class[:20]
		}
		_ = classText(page, class)
		_ = classDataIDs(page, class)
		_ = hasClass(page, class)
		_ = parseProfile(page, "u1")
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParseProfileIgnoresBadNumbers(t *testing.T) {
	body := `<span class="gradyear">Class of banana</span>
<span class="birthday">not-a-date</span>
<span class="photocount">many</span>`
	pp := parseProfile(body, "u")
	if pp.GradYear != 0 || pp.Birthday != nil || pp.PhotoCount != 0 {
		t.Fatalf("bad numbers accepted: %+v", pp)
	}
}
