package osnhttp

import "strconv"

// RequestIDHeader carries the client-minted request id; the server echoes
// it into the access-log event and the JSON error envelope so runreport
// can join attacker-side wire events to defender-side access events into
// one cross-process timeline. The constant is already in canonical MIME
// form, so header reads and writes take the fast, allocation-free path.
const RequestIDHeader = "X-Osn-Request-Id"

// requestID derives the deterministic id for one logical request: a pure
// 64-bit FNV-1a hash of the client's seed and the request path, rendered
// as hex. A pure function — rather than a counter — is what keeps runs
// reproducible under parallel workers: ids don't depend on which
// goroutine reaches the wire first, and a retried attempt re-fetches the
// same path so it keeps its id with no bookkeeping. Distinct logical
// requests always differ in path (account token, target id, page), so ids
// collide only by hash accident (~1e-10 at a hundred thousand requests).
func requestID(seed uint64, path string) string {
	h := uint64(14695981039346656037) ^ seed
	for i := 0; i < len(path); i++ {
		h ^= uint64(path[i])
		h *= 1099511628211
	}
	return strconv.FormatUint(h, 16)
}
