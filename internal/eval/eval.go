// Package eval measures how well the attack did. It implements both of the
// paper's evaluation regimes: full ground truth (HS1, where the authors had
// the complete roster) and limited ground truth (HS2/HS3, where held-out
// seed accounts provide "test users" and §5.5's estimators extrapolate
// coverage and false positives).
//
// This is the only attack-adjacent package allowed to read the world behind
// the platform; internal/core never does.
package eval

import (
	"fmt"

	"hsprofiler/internal/core"
	"hsprofiler/internal/crawler"
	"hsprofiler/internal/osn"
)

// GroundTruth is the oracle roster of one school: the paper's set M (the
// students with OSN accounts) keyed by public ID.
type GroundTruth struct {
	// students maps public ID to the true graduation year.
	students map[osn.PublicID]int
	// minimal marks the students whose public profiles are minimal
	// (registered minors) — the population §7.2 compares on.
	minimal map[osn.PublicID]bool
	m       int
}

// NewGroundTruth extracts the oracle for a school from the platform's
// underlying world.
func NewGroundTruth(p *osn.Platform, schoolID int) *GroundTruth {
	w := p.World()
	gt := &GroundTruth{
		students: make(map[osn.PublicID]int),
		minimal:  make(map[osn.PublicID]bool),
	}
	for _, person := range w.RosterOnOSN(schoolID) {
		id, ok := p.PublicIDOf(person.ID)
		if !ok {
			continue
		}
		gt.students[id] = person.GradYear
		if person.RegisteredMinorAt(w.Now) {
			gt.minimal[id] = true
		}
		gt.m++
	}
	return gt
}

// M is |M|: the number of students on the OSN.
func (gt *GroundTruth) M() int { return gt.m }

// MinimalCount is the number of students with minimal public profiles.
func (gt *GroundTruth) MinimalCount() int { return len(gt.minimal) }

// IsStudent reports whether the public ID belongs to a current student, and
// if so their true graduation year.
func (gt *GroundTruth) IsStudent(id osn.PublicID) (gradYear int, ok bool) {
	gy, ok := gt.students[id]
	return gy, ok
}

// IsMinimalStudent reports whether the ID is a student with a minimal
// public profile.
func (gt *GroundTruth) IsMinimalStudent(id osn.PublicID) bool {
	return gt.minimal[id]
}

// Outcome scores one inferred set H against full ground truth, in the
// paper's Table 4 terms.
type Outcome struct {
	// Total is |H|.
	Total int
	// Found is |H ∩ M|: true students discovered (Table 4's x).
	Found int
	// CorrectYear is how many of Found carry the right graduation year
	// (Table 4's y).
	CorrectYear int
	// FalsePositives is |H − M|.
	FalsePositives int
	// M is |M|.
	M int
}

// FoundFrac is the fraction of the student body discovered.
func (o Outcome) FoundFrac() float64 {
	if o.M == 0 {
		return 0
	}
	return float64(o.Found) / float64(o.M)
}

// FPRate is the fraction of H that is wrong — the paper's "% false
// positives" (e.g. 128/400 = 32%).
func (o Outcome) FPRate() float64 {
	if o.Total == 0 {
		return 0
	}
	return float64(o.FalsePositives) / float64(o.Total)
}

// CorrectYearFrac is, among discovered students, the fraction classified in
// the right graduation year.
func (o Outcome) CorrectYearFrac() float64 {
	if o.Found == 0 {
		return 0
	}
	return float64(o.CorrectYear) / float64(o.Found)
}

// String renders the outcome in the paper's x/y notation.
func (o Outcome) String() string {
	return fmt.Sprintf("%d/%d (FP %d, |H| %d, |M| %d)",
		o.Found, o.CorrectYear, o.FalsePositives, o.Total, o.M)
}

// Evaluate scores an inferred set against the roster.
func (gt *GroundTruth) Evaluate(sel []core.Inferred) Outcome {
	o := Outcome{M: gt.m, Total: len(sel)}
	for _, s := range sel {
		gy, ok := gt.students[s.ID]
		if !ok {
			o.FalsePositives++
			continue
		}
		o.Found++
		if s.GradYear == gy {
			o.CorrectYear++
		}
	}
	return o
}

// CollectTestUsers implements the §5.5 limited-ground-truth protocol: run
// the school search again with a second, disjoint set of accounts, download
// those profiles, and keep the self-declared current students that the
// first seed set missed. These become the held-out sample.
func CollectTestUsers(sess *crawler.Session, school osn.SchoolRef, currentYear int, firstSeeds []osn.SearchResult, accounts []int) ([]osn.PublicID, error) {
	inFirst := make(map[osn.PublicID]bool, len(firstSeeds))
	for _, s := range firstSeeds {
		inFirst[s.ID] = true
	}
	seeds, err := sess.CollectSeeds(school.ID, accounts)
	if err != nil {
		return nil, err
	}
	var out []osn.PublicID
	for _, s := range seeds {
		if inFirst[s.ID] {
			continue
		}
		pp, err := sess.FetchProfile(s.ID)
		if err != nil {
			return nil, err
		}
		if core.IndicatesCurrentStudent(pp, school.Name, currentYear) {
			out = append(out, s.ID)
		}
	}
	return out, nil
}

// LimitedEstimate is the §5.5 extrapolation from test-user hits.
type LimitedEstimate struct {
	// TestUsers and TestHits are the sample size and how many of the
	// sample landed in H.
	TestUsers, TestHits int
	// EstFound is the estimated number of students discovered;
	// EstFalsePositives the estimated false positives in the top-t.
	EstFound, EstFalsePositives float64
	// PctFound and PctFalsePositives are the paper's Figure 2 series.
	PctFound, PctFalsePositives float64
}

// EstimateLimited applies the paper's two estimator formulas:
//
//	found(t) = cores + (z_t / #test) · (HS size − cores)
//	fp(t)    = t − (z_t / #test) · (HS size − cores)
//
// where cores is the (extended) core count, z_t the test users present in
// the top-t selection, and hsSize the school's enrollment (attacker-known,
// e.g. from Wikipedia). Percentages divide by hsSize and (cores + t)
// respectively.
func EstimateLimited(testUsers []osn.PublicID, sel []core.Inferred, hsSize, cores, t int) LimitedEstimate {
	// Membership is against the whole inferred set H. Under the enhanced
	// methodology a test user may have been promoted into the extended
	// core — the paper still counts them as discovered.
	inH := make(map[osn.PublicID]bool, len(sel))
	for _, s := range sel {
		inH[s.ID] = true
	}
	est := LimitedEstimate{TestUsers: len(testUsers)}
	for _, id := range testUsers {
		if inH[id] {
			est.TestHits++
		}
	}
	if est.TestUsers == 0 || hsSize <= cores {
		return est
	}
	frac := float64(est.TestHits) / float64(est.TestUsers)
	nonCore := float64(hsSize - cores)
	est.EstFound = float64(cores) + frac*nonCore
	est.EstFalsePositives = float64(t) - frac*nonCore
	if est.EstFalsePositives < 0 {
		est.EstFalsePositives = 0
	}
	est.PctFound = est.EstFound / float64(hsSize)
	if est.PctFound > 1 {
		est.PctFound = 1
	}
	est.PctFalsePositives = est.EstFalsePositives / float64(cores+t)
	return est
}
