package eval

import (
	"math"
	"testing"

	"hsprofiler/internal/core"
	"hsprofiler/internal/crawler"
	"hsprofiler/internal/osn"
	"hsprofiler/internal/worldgen"
)

func rig(t testing.TB, seed uint64, accounts int) (*osn.Platform, *crawler.Session) {
	t.Helper()
	w, err := worldgen.Generate(worldgen.TinyConfig(), seed)
	if err != nil {
		t.Fatal(err)
	}
	p := osn.NewPlatform(w, osn.Facebook(), osn.Config{})
	d, err := crawler.NewDirect(p, accounts)
	if err != nil {
		t.Fatal(err)
	}
	return p, crawler.NewSession(d)
}

func TestGroundTruthBasics(t *testing.T) {
	p, _ := rig(t, 11, 1)
	gt := NewGroundTruth(p, 0)
	w := p.World()
	if gt.M() != len(w.RosterOnOSN(0)) {
		t.Fatalf("M = %d, roster %d", gt.M(), len(w.RosterOnOSN(0)))
	}
	if gt.MinimalCount() == 0 || gt.MinimalCount() >= gt.M() {
		t.Fatalf("minimal count %d of %d implausible", gt.MinimalCount(), gt.M())
	}
	for _, person := range w.RosterOnOSN(0) {
		id, _ := p.PublicIDOf(person.ID)
		gy, ok := gt.IsStudent(id)
		if !ok || gy != person.GradYear {
			t.Fatalf("student %d not recognized", person.ID)
		}
		if gt.IsMinimalStudent(id) != person.RegisteredMinorAt(w.Now) {
			t.Fatalf("minimality oracle wrong for %d", person.ID)
		}
	}
	if _, ok := gt.IsStudent("not-a-user"); ok {
		t.Fatal("unknown ID recognized as student")
	}
}

func TestOutcomeArithmetic(t *testing.T) {
	o := Outcome{Total: 400, Found: 272, CorrectYear: 250, FalsePositives: 128, M: 325}
	if math.Abs(o.FoundFrac()-272.0/325.0) > 1e-12 {
		t.Error("FoundFrac wrong")
	}
	if math.Abs(o.FPRate()-0.32) > 1e-12 {
		t.Error("FPRate wrong")
	}
	if math.Abs(o.CorrectYearFrac()-250.0/272.0) > 1e-12 {
		t.Error("CorrectYearFrac wrong")
	}
	var zero Outcome
	if zero.FoundFrac() != 0 || zero.FPRate() != 0 || zero.CorrectYearFrac() != 0 {
		t.Error("zero outcome should yield zero rates")
	}
	if o.String() == "" {
		t.Error("String empty")
	}
}

func TestEvaluateCounts(t *testing.T) {
	p, _ := rig(t, 11, 1)
	gt := NewGroundTruth(p, 0)
	w := p.World()
	// Build a synthetic selection: 2 real students (one with wrong year),
	// 1 non-student.
	var sel []core.Inferred
	count := 0
	for _, person := range w.RosterOnOSN(0) {
		id, _ := p.PublicIDOf(person.ID)
		gy := person.GradYear
		if count == 1 {
			gy++ // deliberately wrong classification
		}
		sel = append(sel, core.Inferred{ID: id, GradYear: gy})
		count++
		if count == 2 {
			break
		}
	}
	for _, person := range w.People {
		if person.Role == worldgen.RoleOutside && person.HasAccount {
			id, _ := p.PublicIDOf(person.ID)
			sel = append(sel, core.Inferred{ID: id, GradYear: 2013})
			break
		}
	}
	o := gt.Evaluate(sel)
	if o.Total != 3 || o.Found != 2 || o.CorrectYear != 1 || o.FalsePositives != 1 {
		t.Fatalf("outcome %+v", o)
	}
}

// TestEndToEndCoverageTiny is the first full-pipeline quality gate: on the
// tiny world the enhanced methodology must find a solid majority of the
// student body at t ≈ school size, with bounded false positives, and
// classify most years correctly — the paper's headline shape.
func TestEndToEndCoverageTiny(t *testing.T) {
	p, sess := rig(t, 11, 2)
	res, err := core.Run(sess, core.Params{
		SchoolName:   p.Schools()[0].Name,
		CurrentYear:  2012,
		Mode:         core.Enhanced,
		MaxThreshold: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	gt := NewGroundTruth(p, 0)
	// t ≈ student body size, as the paper chooses it. The tiny world's
	// cohorts are small (scores quantize onto a handful of levels), so the
	// bands here are loose; the calibrated HS1 world in
	// internal/experiments enforces the paper's actual numbers.
	o := gt.Evaluate(res.Select(60, true))
	t.Logf("tiny world: %v found=%.0f%% fp=%.0f%% year=%.0f%%",
		o, 100*o.FoundFrac(), 100*o.FPRate(), 100*o.CorrectYearFrac())
	if o.FoundFrac() < 0.45 {
		t.Errorf("found only %.0f%% of students", 100*o.FoundFrac())
	}
	if o.FPRate() > 0.55 {
		t.Errorf("false-positive rate %.0f%%", 100*o.FPRate())
	}
	if o.CorrectYearFrac() < 0.6 {
		t.Errorf("correct-year fraction %.0f%%", 100*o.CorrectYearFrac())
	}
	// Ranking quality: the head of the list must be much cleaner than the
	// tail — precision in the top 20 ranked candidates above 60%.
	topSel := res.Select(20, true)
	hits := 0
	ranked := 0
	for _, s := range topSel {
		if s.FromCore {
			continue
		}
		ranked++
		if _, ok := gt.IsStudent(s.ID); ok {
			hits++
		}
	}
	if ranked > 0 && float64(hits)/float64(ranked) < 0.6 {
		t.Errorf("top-20 precision %.2f", float64(hits)/float64(ranked))
	}
}

func TestEstimateLimitedFormulas(t *testing.T) {
	// Hand-computed: 40 test users, 30 hits, hsSize 1500, cores 152, t 1500.
	sel := make([]core.Inferred, 0, 40)
	var testUsers []osn.PublicID
	for i := 0; i < 40; i++ {
		id := osn.PublicID(rune('a'+i/26)) + osn.PublicID(rune('a'+i%26))
		testUsers = append(testUsers, id)
		if i < 30 {
			sel = append(sel, core.Inferred{ID: id})
		}
	}
	est := EstimateLimited(testUsers, sel, 1500, 152, 1500)
	if est.TestUsers != 40 || est.TestHits != 30 {
		t.Fatalf("sample: %+v", est)
	}
	frac := 30.0 / 40.0
	wantFound := 152 + frac*(1500-152)
	wantFP := 1500 - frac*(1500-152)
	if math.Abs(est.EstFound-wantFound) > 1e-9 || math.Abs(est.EstFalsePositives-wantFP) > 1e-9 {
		t.Fatalf("estimates %+v", est)
	}
	if math.Abs(est.PctFound-wantFound/1500) > 1e-9 {
		t.Fatalf("pct found %v", est.PctFound)
	}
	if math.Abs(est.PctFalsePositives-wantFP/(152+1500)) > 1e-9 {
		t.Fatalf("pct fp %v", est.PctFalsePositives)
	}
}

func TestEstimateLimitedEdgeCases(t *testing.T) {
	if est := EstimateLimited(nil, nil, 100, 10, 50); est.EstFound != 0 {
		t.Error("empty sample should not extrapolate")
	}
	// Entries promoted into the extended core still count as discovered
	// (the paper's "in our inferred set" check).
	sel := []core.Inferred{{ID: "x", FromCore: true}}
	est := EstimateLimited([]osn.PublicID{"x"}, sel, 100, 10, 50)
	if est.TestHits != 1 {
		t.Error("extended-core test users should count as hits")
	}
	// All test users hit with huge t: FP clamps at >= 0.
	sel = []core.Inferred{{ID: "a"}, {ID: "b"}}
	est = EstimateLimited([]osn.PublicID{"a", "b"}, sel, 100, 10, 20)
	if est.EstFalsePositives < 0 {
		t.Error("negative FP estimate")
	}
	if est.PctFound > 1 {
		t.Error("PctFound above 1")
	}
}

// TestLimitedEstimateTracksTruth checks the §5.5 estimator against the full
// oracle on the same run: the extrapolated coverage should land near the
// true coverage.
func TestLimitedEstimateTracksTruth(t *testing.T) {
	p, sess := rig(t, 11, 4)
	firstAccounts := []int{0, 1}
	secondAccounts := []int{2, 3}
	res, err := core.Run(sess, core.Params{
		SchoolName:   p.Schools()[0].Name,
		CurrentYear:  2012,
		Mode:         core.Enhanced,
		MaxThreshold: 100,
		SeedAccounts: firstAccounts,
	})
	if err != nil {
		t.Fatal(err)
	}
	testUsers, err := CollectTestUsers(sess, res.School, 2012, res.Seeds, secondAccounts)
	if err != nil {
		t.Fatal(err)
	}
	if len(testUsers) == 0 {
		t.Skip("no held-out test users in this tiny seed")
	}
	// None of the test users may be in the first seed set.
	seedSet := map[osn.PublicID]bool{}
	for _, s := range res.Seeds {
		seedSet[s.ID] = true
	}
	for _, id := range testUsers {
		if seedSet[id] {
			t.Fatalf("test user %s is in the first seed set", id)
		}
	}
	const threshold = 80
	sel := res.Select(threshold, true)
	gt := NewGroundTruth(p, 0)
	truth := gt.Evaluate(sel)
	est := EstimateLimited(testUsers, sel, len(p.World().Roster(0)), res.ExtendedCoreSize, threshold)
	t.Logf("truth found %.2f; estimated %.2f (from %d/%d test users)",
		truth.FoundFrac(), est.PctFound, est.TestHits, est.TestUsers)
	if est.TestUsers < 5 {
		t.Skip("sample too small for a stable comparison")
	}
	if math.Abs(est.PctFound-truth.FoundFrac()) > 0.35 {
		t.Errorf("estimator far from truth: est %.2f vs true %.2f", est.PctFound, truth.FoundFrac())
	}
}

func TestMatchNames(t *testing.T) {
	roster := []RosterEntry{
		{Name: "Ann Walker", GradYear: 2013},
		{Name: "Bo Smith", GradYear: 2014},
		{Name: "Bo Smith", GradYear: 2012}, // full-name collision
	}
	inferred := []core.Inferred{
		{Name: "Ann Walker", GradYear: 2013}, // unique, correct year
		{Name: "ann walker", GradYear: 2014}, // case-insensitive; wrong year — but duplicate name match
		{Name: "Bo Smith", GradYear: 2014},   // ambiguous
		{Name: "itzcarl", GradYear: 2015},    // alias: unmatched
	}
	st := MatchNames(roster, inferred)
	if st.Inferred != 4 || st.RosterSize != 3 {
		t.Fatalf("sizes %+v", st)
	}
	if st.Unique != 2 || st.UniqueCorrectYear != 1 {
		t.Fatalf("unique %d correct %d", st.Unique, st.UniqueCorrectYear)
	}
	if st.Ambiguous != 1 || st.Unmatched != 1 {
		t.Fatalf("ambiguous %d unmatched %d", st.Ambiguous, st.Unmatched)
	}
	if st.RosterCovered != 3 {
		t.Fatalf("covered %d", st.RosterCovered)
	}
}

// TestNameMatchingTracksOracle runs the paper's roster-matching validation
// next to the identity oracle on the same attack output: name matching
// should find nearly as many students, the gap being aliases + collisions.
func TestNameMatchingTracksOracle(t *testing.T) {
	p, sess := rig(t, 11, 2)
	res, err := core.Run(sess, core.Params{
		SchoolName: p.Schools()[0].Name, CurrentYear: 2012,
		Mode: core.Enhanced, MaxThreshold: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	sel := res.Select(60, true)
	oracle := NewGroundTruth(p, 0).Evaluate(sel)
	roster := Roster(p, 0)
	names := MatchNames(roster, sel)
	t.Logf("oracle found %d; name matching: unique %d (year-correct %d), ambiguous %d, unmatched %d, roster covered %d/%d",
		oracle.Found, names.Unique, names.UniqueCorrectYear, names.Ambiguous,
		names.Unmatched, names.RosterCovered, names.RosterSize)
	matched := names.Unique + names.Ambiguous
	if matched == 0 {
		t.Fatal("name matching found nothing")
	}
	// Name matching can exceed the oracle only via false positives that
	// happen to collide with roster names; it should be within a band.
	if matched < oracle.Found/2 {
		t.Errorf("name matching (%d) far below oracle (%d)", matched, oracle.Found)
	}
	aliased, off, total := AliasLoss(p, 0)
	if total != len(roster) {
		t.Fatalf("alias-loss total %d, roster %d", total, len(roster))
	}
	if off == 0 {
		t.Error("no off-platform students; adoption model inert")
	}
	_ = aliased
}
