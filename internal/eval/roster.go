package eval

import (
	"strings"

	"hsprofiler/internal/core"
	"hsprofiler/internal/osn"
)

// RosterEntry is one line of the confidential student list the paper
// obtained through an offline channel: a legal name and a graduating class.
type RosterEntry struct {
	Name     string
	GradYear int
}

// Roster extracts the school's offline student list from the world. Note
// that it carries *legal* names: display-name aliases on the OSN do not
// appear here, which is exactly why the paper could not match ~10% of the
// student body.
func Roster(p *osn.Platform, schoolID int) []RosterEntry {
	var out []RosterEntry
	for _, person := range p.World().Roster(schoolID) {
		out = append(out, RosterEntry{
			Name:     person.FirstName + " " + person.LastName,
			GradYear: person.GradYear,
		})
	}
	return out
}

// NameMatchStats summarizes matching an inferred set against a roster by
// display name — the paper's actual validation procedure, with all its
// ambiguity.
type NameMatchStats struct {
	// Inferred is the size of the matched-against set.
	Inferred int
	// Unique counts inferred entries matching exactly one roster name.
	Unique int
	// UniqueCorrectYear counts those whose inferred graduation year also
	// matches the roster's.
	UniqueCorrectYear int
	// Ambiguous counts inferred entries matching two or more roster
	// entries (same full name, e.g. two Smith cousins).
	Ambiguous int
	// Unmatched counts inferred entries matching no roster name: false
	// positives, or students behind aliases.
	Unmatched int
	// RosterCovered counts distinct roster lines matched by at least one
	// inferred entry.
	RosterCovered int
	// RosterSize is the roster length.
	RosterSize int
}

// MatchNames performs the paper's roster-matching evaluation: join inferred
// display names against the student list, case-insensitively. Unlike the
// oracle in GroundTruth (which joins on identity), this is what a
// researcher with only the offline list could actually compute.
func MatchNames(roster []RosterEntry, inferred []core.Inferred) NameMatchStats {
	byName := make(map[string][]RosterEntry, len(roster))
	for _, r := range roster {
		key := strings.ToLower(r.Name)
		byName[key] = append(byName[key], r)
	}
	st := NameMatchStats{Inferred: len(inferred), RosterSize: len(roster)}
	covered := make(map[string]bool)
	for _, inf := range inferred {
		key := strings.ToLower(inf.Name)
		matches := byName[key]
		switch {
		case len(matches) == 0:
			st.Unmatched++
		case len(matches) == 1:
			st.Unique++
			if matches[0].GradYear == inf.GradYear {
				st.UniqueCorrectYear++
			}
			covered[key] = true
		default:
			st.Ambiguous++
			covered[key] = true
		}
	}
	for key := range covered {
		st.RosterCovered += len(byName[key])
	}
	if st.RosterCovered > st.RosterSize {
		st.RosterCovered = st.RosterSize
	}
	return st
}

// AliasLoss estimates how much of the roster is unreachable to name
// matching because the student's account displays an alias (or the student
// has no account at all) — the paper's "about 10%".
func AliasLoss(p *osn.Platform, schoolID int) (aliased, offPlatform, total int) {
	for _, person := range p.World().Roster(schoolID) {
		total++
		switch {
		case !person.HasAccount:
			offPlatform++
		case person.AliasName != "":
			aliased++
		}
	}
	return aliased, offPlatform, total
}
