package loadgen

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Mix is the relative request weighting across the three steady-state
// endpoints, mirroring the paper's crawl composition (Table 3: a few
// searches, then profile and friend-list fetches dominating).
type Mix struct {
	Search  int
	Profile int
	Friends int
}

// DefaultMix approximates the attack's request composition.
func DefaultMix() Mix { return Mix{Search: 1, Profile: 8, Friends: 4} }

// ParseMix parses "search=1,profile=8,friends=4"; omitted keys are 0.
func ParseMix(s string) (Mix, error) {
	var m Mix
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return Mix{}, fmt.Errorf("loadgen: bad mix term %q (want key=weight)", part)
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return Mix{}, fmt.Errorf("loadgen: bad mix weight %q", part)
		}
		switch k {
		case "search":
			m.Search = n
		case "profile":
			m.Profile = n
		case "friends":
			m.Friends = n
		default:
			return Mix{}, fmt.Errorf("loadgen: unknown mix key %q", k)
		}
	}
	if m.Search+m.Profile+m.Friends == 0 {
		return Mix{}, fmt.Errorf("loadgen: mix has zero total weight")
	}
	return m, nil
}

// Config shapes one load run.
type Config struct {
	// BaseURL is the osnd address, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Rate > 0 runs open-loop at that many requests/sec on a fixed arrival
	// schedule. Rate == 0 runs closed-loop: Workers goroutines each issue
	// the next request as soon as the previous completes (max-throughput
	// mode, used by servingbench's sweep).
	Rate    float64
	Workers int
	// Duration is the measured window, after Warmup (excluded from stats).
	Duration time.Duration
	Warmup   time.Duration
	Mix      Mix
	// Accounts to register for crawling; requests round-robin over them.
	Accounts int
	// Targets caps how many profile IDs the prep phase harvests via search.
	Targets int
	// SchoolID scopes searches; negative picks the first school listed.
	SchoolID int
	// Timeout bounds each request.
	Timeout time.Duration
	// MaxInflight caps concurrent open-loop requests; arrivals beyond the
	// cap are counted as dropped, never delayed — delaying them would be
	// coordinated omission. 0 defaults to 512.
	MaxInflight int
	// Seed drives the deterministic per-index endpoint/target pick.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.Duration == 0 {
		c.Duration = 10 * time.Second
	}
	if c.Mix == (Mix{}) {
		c.Mix = DefaultMix()
	}
	if c.Accounts == 0 {
		c.Accounts = 4
	}
	if c.Targets == 0 {
		c.Targets = 256
	}
	if c.Timeout == 0 {
		c.Timeout = 10 * time.Second
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = 512
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Outcome classifies one completed request for the error taxonomy.
type Outcome int

const (
	OK         Outcome = iota
	Hidden             // 410: friend list or profile withheld — an application answer, not a failure
	NotFound           // 404
	Throttled          // 503 from the platform's throttle
	Shed               // 503 from a concurrency limiter (overload envelope)
	Suspended          // 429
	Client4xx          // any other 4xx
	Server5xx          // 5xx
	Malformed          // 200 whose body fails the cheap shape check
	NetTimeout         // transport timeout
	NetError           // any other transport error
	numOutcomes
)

var outcomeNames = [numOutcomes]string{
	"ok", "hidden", "not_found", "throttled", "shed", "suspended",
	"client_4xx", "server_5xx", "malformed", "net_timeout", "net_error",
}

// epStats accumulates per-endpoint results.
type epStats struct {
	hist     Hist
	outcomes [numOutcomes]atomic.Uint64
}

func (s *epStats) record(o Outcome, latency time.Duration) {
	s.outcomes[o].Add(1)
	s.hist.Observe(latency)
}

// EndpointReport is the per-endpoint section of a Report.
type EndpointReport struct {
	Requests  uint64            `json:"requests"`
	RPS       float64           `json:"rps"`
	MeanUs    int64             `json:"mean_us"`
	P50Us     int64             `json:"p50_us"`
	P95Us     int64             `json:"p95_us"`
	P99Us     int64             `json:"p99_us"`
	MaxUs     int64             `json:"max_us"`
	Errors    map[string]uint64 `json:"errors,omitempty"`
	ErrorRate float64           `json:"error_rate"`
	// HistLowsUs/HistCounts are the non-empty histogram buckets (lower
	// bound in µs, count), so downstream tools can re-aggregate.
	HistLowsUs []uint64 `json:"hist_lows_us,omitempty"`
	HistCounts []uint64 `json:"hist_counts,omitempty"`
}

// Report is the machine-readable result of a run.
type Report struct {
	BaseURL    string                     `json:"base_url"`
	OpenLoop   bool                       `json:"open_loop"`
	RateTarget float64                    `json:"rate_target,omitempty"`
	Workers    int                        `json:"workers,omitempty"`
	Seconds    float64                    `json:"seconds"`
	Requests   uint64                     `json:"requests"`
	RPS        float64                    `json:"rps"`
	Dropped    uint64                     `json:"dropped"`
	Endpoints  map[string]*EndpointReport `json:"endpoints"`
	Overall    *EndpointReport            `json:"overall"`
}

// failure reports whether an outcome counts against the error rate.
// Hidden/NotFound/Throttled/Suspended are the platform answering as
// designed; the rest mean the serving plane (or the network) broke.
func failure(o Outcome) bool {
	switch o {
	case OK, Hidden, NotFound, Throttled, Suspended:
		return false
	}
	return true
}

// gen is one prepared run: URL tables plus live stats.
type gen struct {
	cfg     Config
	hc      *http.Client
	search  []string // one per (account, page) pair
	profile []string // one per (target, account) pair
	friends []string // one per (target, page, account) pair
	stats   [3]epStats
	dropped atomic.Uint64
}

var epNames = [3]string{"search", "profile", "friends"}

// splitmix64 is the same deterministic index hash sim uses for identity-
// keyed streams: the i-th request's endpoint and target depend only on
// (seed, i), never on scheduling.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Run executes the configured load: prep (register accounts, harvest
// targets, precompute URL tables), warmup, then the measured window.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: BaseURL is required")
	}
	g := &gen{
		cfg: cfg,
		hc: &http.Client{
			Timeout: cfg.Timeout,
			Transport: &http.Transport{
				MaxIdleConns:        cfg.MaxInflight + cfg.Workers,
				MaxIdleConnsPerHost: cfg.MaxInflight + cfg.Workers,
			},
		},
	}
	if err := g.prep(ctx); err != nil {
		return nil, err
	}
	if cfg.Rate > 0 {
		return g.openLoop(ctx)
	}
	return g.closedLoop(ctx)
}

// prep registers accounts, harvests target profile IDs through search
// (the only discovery surface a stranger has — same as the attack), and
// precomputes every URL the run can issue so the hot loop only indexes
// string tables.
func (g *gen) prep(ctx context.Context) error {
	base := strings.TrimRight(g.cfg.BaseURL, "/")
	tokens := make([]string, 0, g.cfg.Accounts)
	for i := 0; i < g.cfg.Accounts; i++ {
		form := url.Values{"name": {fmt.Sprintf("loadgen%d", i)}, "birth": {"1985-01-01"}}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/api/v1/register",
			strings.NewReader(form.Encode()))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
		resp, err := g.hc.Do(req)
		if err != nil {
			return fmt.Errorf("loadgen: register: %w", err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("loadgen: register: %s: %s", resp.Status, strings.TrimSpace(string(body)))
		}
		tok := jsonField(string(body), "token")
		if tok == "" {
			return fmt.Errorf("loadgen: register: no token in %q", body)
		}
		tokens = append(tokens, tok)
	}

	schoolID := g.cfg.SchoolID
	if schoolID < 0 {
		body, err := g.fetch(ctx, base+"/api/v1/schools")
		if err != nil {
			return fmt.Errorf("loadgen: schools: %w", err)
		}
		id := jsonField(body, "id")
		if id == "" {
			return fmt.Errorf("loadgen: no schools served")
		}
		if schoolID, err = strconv.Atoi(id); err != nil {
			return fmt.Errorf("loadgen: bad school id %q", id)
		}
	}

	// Harvest target IDs by paging search on account 0, and remember how
	// deep the result set goes so the search mix exercises every page.
	var targets []string
	pages := 0
	for page := 0; len(targets) < g.cfg.Targets; page++ {
		body, err := g.fetch(ctx, fmt.Sprintf("%s/api/v1/search?school=%d&page=%d&acct=%s",
			base, schoolID, page, url.QueryEscape(tokens[0])))
		if err != nil {
			return fmt.Errorf("loadgen: harvest page %d: %w", page, err)
		}
		ids := jsonIDs(body)
		targets = append(targets, ids...)
		pages = page + 1
		if !strings.Contains(body, `"more":true`) || len(ids) == 0 {
			break
		}
	}
	if len(targets) == 0 {
		return fmt.Errorf("loadgen: search returned no targets (school %d)", schoolID)
	}
	if len(targets) > g.cfg.Targets {
		targets = targets[:g.cfg.Targets]
	}

	for _, tok := range tokens {
		esc := url.QueryEscape(tok)
		for p := 0; p < pages; p++ {
			g.search = append(g.search, fmt.Sprintf("%s/api/v1/search?school=%d&page=%d&acct=%s", base, schoolID, p, esc))
		}
	}
	for i, id := range targets {
		esc := url.QueryEscape(tokens[i%len(tokens)])
		g.profile = append(g.profile, fmt.Sprintf("%s/api/v1/profile/%s?acct=%s", base, url.PathEscape(id), esc))
		for p := 0; p < 2; p++ {
			g.friends = append(g.friends, fmt.Sprintf("%s/api/v1/friends/%s?page=%d&acct=%s", base, url.PathEscape(id), p, esc))
		}
	}
	return nil
}

func (g *gen) fetch(ctx context.Context, url string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return "", err
	}
	resp, err := g.hc.Do(req)
	if err != nil {
		return "", err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return string(body), nil
}

// jsonField extracts the first string value for key from a JSON body. The
// prep phase's needs are narrow enough (token, first school id) that a
// scanner beats pulling a decoder into the hot package.
func jsonField(body, key string) string {
	marker := `"` + key + `":`
	i := strings.Index(body, marker)
	if i < 0 {
		return ""
	}
	rest := body[i+len(marker):]
	if strings.HasPrefix(rest, `"`) {
		rest = rest[1:]
		if j := strings.IndexByte(rest, '"'); j >= 0 {
			return rest[:j]
		}
		return ""
	}
	j := strings.IndexAny(rest, ",}")
	if j < 0 {
		return ""
	}
	return rest[:j]
}

// jsonIDs extracts every `"id":"..."` value from a result page.
func jsonIDs(body string) []string {
	var out []string
	for {
		i := strings.Index(body, `"id":"`)
		if i < 0 {
			return out
		}
		body = body[i+len(`"id":"`):]
		j := strings.IndexByte(body, '"')
		if j < 0 {
			return out
		}
		out = append(out, body[:j])
		body = body[j:]
	}
}

// pick resolves the i-th request's endpoint and URL deterministically.
func (g *gen) pick(i uint64) (ep int, url string) {
	h := splitmix64(g.cfg.Seed ^ i)
	total := g.cfg.Mix.Search + g.cfg.Mix.Profile + g.cfg.Mix.Friends
	w := int(h % uint64(total))
	h = splitmix64(h)
	switch {
	case w < g.cfg.Mix.Search:
		return 0, g.search[h%uint64(len(g.search))]
	case w < g.cfg.Mix.Search+g.cfg.Mix.Profile:
		return 1, g.profile[h%uint64(len(g.profile))]
	default:
		return 2, g.friends[h%uint64(len(g.friends))]
	}
}

// do issues one request and classifies it. latency is measured from
// `from` — the scheduled arrival in open-loop mode, so queueing delay the
// server caused is charged to the server.
func (g *gen) do(ctx context.Context, ep int, url string, from time.Time, record bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		if record {
			g.stats[ep].record(NetError, time.Since(from))
		}
		return
	}
	resp, err := g.hc.Do(req)
	var out Outcome
	if err != nil {
		out = NetError
		if isTimeout(err) {
			out = NetTimeout
		}
		if record {
			g.stats[ep].record(out, time.Since(from))
		}
		return
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	switch {
	case rerr != nil:
		out = NetError
	case resp.StatusCode == http.StatusOK:
		out = OK
		if len(body) < 2 || body[0] != '{' || body[len(body)-1] != '}' {
			out = Malformed
		}
	case resp.StatusCode == http.StatusGone:
		out = Hidden
	case resp.StatusCode == http.StatusNotFound:
		out = NotFound
	case resp.StatusCode == http.StatusServiceUnavailable:
		out = Throttled
		if strings.Contains(string(body), `"code":"overload"`) {
			out = Shed
		}
	case resp.StatusCode == http.StatusTooManyRequests:
		out = Suspended
	case resp.StatusCode >= 500:
		out = Server5xx
	default:
		out = Client4xx
	}
	if record {
		g.stats[ep].record(out, time.Since(from))
	}
}

func isTimeout(err error) bool {
	type timeout interface{ Timeout() bool }
	for e := err; e != nil; {
		if t, ok := e.(timeout); ok && t.Timeout() {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

// openLoop fires requests on the fixed arrival schedule. An arrival that
// finds the inflight cap exhausted is dropped and counted — not delayed,
// which would let a slow server throttle its own measurement.
func (g *gen) openLoop(ctx context.Context) (*Report, error) {
	cfg := g.cfg
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	start := time.Now()
	measureFrom := start.Add(cfg.Warmup)
	end := measureFrom.Add(cfg.Duration)
	sem := make(chan struct{}, cfg.MaxInflight)
	var wg sync.WaitGroup
	var i uint64
	for {
		sched := start.Add(time.Duration(i) * interval)
		if sched.After(end) || ctx.Err() != nil {
			break
		}
		// Sleep coarsely, then spin the last stretch: timer overshoot
		// (hundreds of µs on a loaded box) would otherwise be charged to
		// the server as arrival-queueing latency.
		const spin = 100 * time.Microsecond
		if d := time.Until(sched); d > spin {
			time.Sleep(d - spin)
		}
		for time.Now().Before(sched) {
			runtime.Gosched() // on small GOMAXPROCS the arrival loop must not starve the request goroutines
		}
		record := !sched.Before(measureFrom)
		select {
		case sem <- struct{}{}:
			ep, url := g.pick(i)
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				g.do(ctx, ep, url, sched, record)
			}()
		default:
			if record {
				g.dropped.Add(1)
			}
		}
		i++
	}
	wg.Wait()
	return g.report(true, cfg.Duration), ctx.Err()
}

// closedLoop runs Workers tight request loops; latency is pure service
// time (no arrival schedule), which is what a max-throughput sweep wants.
func (g *gen) closedLoop(ctx context.Context) (*Report, error) {
	cfg := g.cfg
	start := time.Now()
	measureFrom := start.Add(cfg.Warmup)
	end := measureFrom.Add(cfg.Duration)
	var next uint64
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				now := time.Now()
				if now.After(end) {
					return
				}
				i := atomic.AddUint64(&next, 1) - 1
				ep, url := g.pick(i)
				g.do(ctx, ep, url, now, now.After(measureFrom))
			}
		}()
	}
	wg.Wait()
	return g.report(false, cfg.Duration), ctx.Err()
}

// report assembles the final Report from the per-endpoint stats.
func (g *gen) report(openLoop bool, window time.Duration) *Report {
	secs := window.Seconds()
	rep := &Report{
		BaseURL:   g.cfg.BaseURL,
		OpenLoop:  openLoop,
		Seconds:   secs,
		Dropped:   g.dropped.Load(),
		Endpoints: make(map[string]*EndpointReport, len(epNames)),
	}
	if openLoop {
		rep.RateTarget = g.cfg.Rate
	} else {
		rep.Workers = g.cfg.Workers
	}
	overall := &epStats{}
	for i := range g.stats {
		s := &g.stats[i]
		rep.Endpoints[epNames[i]] = endpointReport(s, secs)
		overall.hist.Merge(&s.hist)
		for o := range s.outcomes {
			overall.outcomes[o].Add(s.outcomes[o].Load())
		}
		rep.Requests += s.hist.Count()
	}
	rep.RPS = float64(rep.Requests) / secs
	rep.Overall = endpointReport(overall, secs)
	return rep
}

func endpointReport(s *epStats, secs float64) *EndpointReport {
	n := s.hist.Count()
	r := &EndpointReport{
		Requests: n,
		RPS:      float64(n) / secs,
		MeanUs:   s.hist.Mean().Microseconds(),
		P50Us:    s.hist.Quantile(0.50).Microseconds(),
		P95Us:    s.hist.Quantile(0.95).Microseconds(),
		P99Us:    s.hist.Quantile(0.99).Microseconds(),
		MaxUs:    s.hist.Max().Microseconds(),
	}
	var failures uint64
	for o := Outcome(0); o < numOutcomes; o++ {
		c := s.outcomes[o].Load()
		if c == 0 || o == OK {
			continue
		}
		if r.Errors == nil {
			r.Errors = make(map[string]uint64)
		}
		r.Errors[outcomeNames[o]] = c
		if failure(o) {
			failures += c
		}
	}
	if n > 0 {
		r.ErrorRate = float64(failures) / float64(n)
	}
	r.HistLowsUs, r.HistCounts = s.hist.Buckets()
	return r
}
