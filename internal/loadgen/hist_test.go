package loadgen

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestBucketRoundTrip checks every value maps to a bucket whose lower bound
// does not exceed it and whose relative error stays within the sub-bucket
// resolution.
func TestBucketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	probe := []uint64{0, 1, 2, 15, 16, 17, 31, 32, 100, 1000, 123456, 1 << 30, 1<<36 - 1, 1 << 36, 1 << 40}
	for i := 0; i < 10000; i++ {
		probe = append(probe, rng.Uint64()>>uint(rng.Intn(40)))
	}
	for _, us := range probe {
		i := bucket(us)
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucket(%d) = %d out of range", us, i)
		}
		low := bucketLow(i)
		capped := us
		if capped >= 1<<(maxPow+1) {
			capped = 1<<(maxPow+1) - 1
		}
		if low > capped {
			t.Fatalf("bucketLow(bucket(%d)) = %d > value", us, low)
		}
		if capped >= linearMax {
			// log-linear region: error bounded by one sub-bucket width
			if float64(capped-low)/float64(capped) > 1.0/subCount {
				t.Fatalf("value %d: lower bound %d exceeds %.2f%% relative error",
					us, low, 100.0/subCount)
			}
		} else if low != capped {
			t.Fatalf("linear region value %d landed at %d", us, low)
		}
	}
	// Bucket lower bounds must be strictly increasing — overlapping buckets
	// would corrupt quantiles silently.
	prev := uint64(0)
	for i := 1; i < histBuckets; i++ {
		if l := bucketLow(i); l <= prev {
			t.Fatalf("bucketLow(%d) = %d not increasing (prev %d)", i, l, prev)
		} else {
			prev = l
		}
	}
}

// TestHistQuantiles feeds a known distribution and checks the reported
// percentiles against the exact ones within the histogram's error bound.
func TestHistQuantiles(t *testing.T) {
	var h Hist
	rng := rand.New(rand.NewSource(7))
	var exact []float64
	for i := 0; i < 20000; i++ {
		// Log-uniform latencies between 10µs and 1s.
		us := 10 * time.Microsecond * time.Duration(1+rng.Intn(100000))
		exact = append(exact, float64(us.Microseconds()))
		h.Observe(us)
	}
	sort.Float64s(exact)
	if h.Count() != 20000 {
		t.Fatalf("count %d", h.Count())
	}
	for _, q := range []float64{0.5, 0.95, 0.99, 0.999} {
		want := exact[int(q*float64(len(exact)-1))]
		got := float64(h.Quantile(q).Microseconds())
		if rel := (want - got) / want; rel < 0 || rel > 1.0/subCount+0.001 {
			t.Errorf("q%.3f: got %.0fµs, exact %.0fµs (rel err %.3f)", q, got, want, rel)
		}
	}
	if h.Max() < h.Quantile(0.999) {
		t.Error("max below p99.9")
	}
}

// TestHistMerge checks merged worker histograms equal one combined stream.
func TestHistMerge(t *testing.T) {
	var a, b, all Hist
	for i := 1; i <= 1000; i++ {
		d := time.Duration(i) * time.Microsecond
		if i%2 == 0 {
			a.Observe(d)
		} else {
			b.Observe(d)
		}
		all.Observe(d)
	}
	a.Merge(&b)
	if a.Count() != all.Count() || a.Mean() != all.Mean() || a.Max() != all.Max() {
		t.Fatalf("merge mismatch: count %d/%d mean %v/%v max %v/%v",
			a.Count(), all.Count(), a.Mean(), all.Mean(), a.Max(), all.Max())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Errorf("q%.2f differs after merge: %v vs %v", q, a.Quantile(q), all.Quantile(q))
		}
	}
}

func TestParseMix(t *testing.T) {
	m, err := ParseMix("search=1,profile=8,friends=4")
	if err != nil || m != (Mix{Search: 1, Profile: 8, Friends: 4}) {
		t.Fatalf("ParseMix = %+v, %v", m, err)
	}
	// Omitted keys are zero weight.
	m, err = ParseMix("profile=3")
	if err != nil || m != (Mix{Profile: 3}) {
		t.Fatalf("ParseMix(profile=3) = %+v, %v", m, err)
	}
	for _, bad := range []string{"", "search", "search=x", "search=-1", "bogus=1", "search=0,profile=0"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
}
