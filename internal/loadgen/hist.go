// Package loadgen drives sustained mixed traffic against a live osnd and
// records what the server did to it: an HDR-style latency histogram per
// endpoint and an error taxonomy. The generator is open-loop — requests
// launch on a fixed arrival schedule regardless of how slowly earlier ones
// complete — so the latency numbers do not suffer coordinated omission
// (a stalled server cannot slow the arrival process down and thereby hide
// its own stall from the percentiles).
package loadgen

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Hist is a fixed-size log-linear latency histogram in microseconds,
// HDR-style: values below 2^linearBits land in exact 1µs buckets, above
// that each power of two is split into 2^subBits sub-buckets, bounding
// relative error at 1/2^subBits (6.25%). Counts are atomics, so concurrent
// workers record without locks; 528 buckets cover 1µs to ~19 hours.
type Hist struct {
	counts [histBuckets]atomic.Uint64
	n      atomic.Uint64
	sum    atomic.Uint64 // total microseconds, for Mean
	max    atomic.Uint64
}

const (
	subBits     = 4
	subCount    = 1 << subBits // sub-buckets per power of two
	linearMax   = subCount     // exact buckets below this value
	maxPow      = 36           // top power of two tracked (~19h in µs)
	histBuckets = linearMax + (maxPow-subBits+1)*subCount
)

// bucket maps a microsecond value to its bucket index.
func bucket(us uint64) int {
	if us < linearMax {
		return int(us)
	}
	pow := bits.Len64(us) - 1
	if pow > maxPow {
		pow = maxPow
		us = 1<<(maxPow+1) - 1
	}
	sub := (us >> (pow - subBits)) & (subCount - 1)
	return linearMax + (pow-subBits)*subCount + int(sub)
}

// bucketLow is the smallest value mapping to bucket i, the value quantile
// lookups report.
func bucketLow(i int) uint64 {
	if i < linearMax {
		return uint64(i)
	}
	i -= linearMax
	pow := i/subCount + subBits
	sub := uint64(i % subCount)
	return 1<<pow | sub<<(pow-subBits)
}

// Observe records one latency.
func (h *Hist) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	us := uint64(d.Microseconds())
	h.counts[bucket(us)].Add(1)
	h.n.Add(1)
	h.sum.Add(us)
	for {
		old := h.max.Load()
		if us <= old || h.max.CompareAndSwap(old, us) {
			return
		}
	}
}

// Merge adds o's counts into h. Not linearizable against concurrent
// Observe calls; call after workers stop.
func (h *Hist) Merge(o *Hist) {
	for i := range h.counts {
		h.counts[i].Add(o.counts[i].Load())
	}
	h.n.Add(o.n.Load())
	h.sum.Add(o.sum.Load())
	if m := o.max.Load(); m > h.max.Load() {
		h.max.Store(m)
	}
}

// Count reports the number of observations.
func (h *Hist) Count() uint64 { return h.n.Load() }

// Mean reports the mean latency.
func (h *Hist) Mean() time.Duration {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load()/n) * time.Microsecond
}

// Max reports the largest observed latency (exact, not bucketed).
func (h *Hist) Max() time.Duration {
	return time.Duration(h.max.Load()) * time.Microsecond
}

// Quantile reports the latency at quantile q in [0,1] (lower bucket bound;
// relative error ≤ 6.25%). Zero observations report 0.
func (h *Hist) Quantile(q float64) time.Duration {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(n-1))
	var seen uint64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen > rank {
			return time.Duration(bucketLow(i)) * time.Microsecond
		}
	}
	return h.Max()
}

// Buckets returns the non-empty (lower-bound µs, count) pairs, for
// machine-readable output.
func (h *Hist) Buckets() (lows []uint64, counts []uint64) {
	for i := range h.counts {
		if c := h.counts[i].Load(); c > 0 {
			lows = append(lows, bucketLow(i))
			counts = append(counts, c)
		}
	}
	return lows, counts
}
