// Package countermeasure implements Section 8 of the paper: evaluating the
// one defence the authors analyze — disabling reverse lookup, so that a
// user whose friend list is hidden from strangers also never appears inside
// other users' visible friend lists.
package countermeasure

import (
	"hsprofiler/internal/core"
	"hsprofiler/internal/crawler"
	"hsprofiler/internal/osn"
	"hsprofiler/internal/worldgen"
)

// Point is one threshold's comparison between the unprotected platform and
// the countermeasure platform.
type Point struct {
	Threshold int
	// BaselineFound and ProtectedFound are the fractions of the student
	// body discovered with and without reverse lookup available.
	BaselineFound, ProtectedFound float64
}

// Runner abstracts how the two attack runs are evaluated; the experiments
// package supplies ground truth, and tests can inject their own.
type Runner struct {
	// World is the generated society under study.
	World *worldgen.World
	// OSNConfig configures both platforms identically.
	OSNConfig osn.Config
	// Accounts is the fake-account count per run.
	Accounts int
	// AttackParams configures both attack runs; SchoolName and
	// CurrentYear must be set (MaxThreshold should cover the sweep).
	AttackParams core.Params
}

// RunBoth executes the attack twice over the same world: once under the
// normal policy and once with HiddenListsInReverseLookup disabled. It
// returns both results along with the platforms (for evaluation).
func (r *Runner) RunBoth() (baselinePlat, protectedPlat *osn.Platform, baseline, protected *core.Result, err error) {
	run := func(pol *osn.Policy) (*osn.Platform, *core.Result, error) {
		plat := osn.NewPlatform(r.World, pol, r.OSNConfig)
		d, err := crawler.NewDirect(plat, r.Accounts)
		if err != nil {
			return nil, nil, err
		}
		res, err := core.Run(crawler.NewSession(d), r.AttackParams)
		if err != nil {
			return nil, nil, err
		}
		return plat, res, nil
	}
	baselinePlat, baseline, err = run(osn.Facebook())
	if err != nil {
		return nil, nil, nil, nil, err
	}
	pol := osn.Facebook()
	pol.HiddenListsInReverseLookup = false
	protectedPlat, protected, err = run(pol)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return baselinePlat, protectedPlat, baseline, protected, nil
}
