package countermeasure

import (
	"testing"

	"hsprofiler/internal/core"
	"hsprofiler/internal/eval"
	"hsprofiler/internal/osn"
	"hsprofiler/internal/worldgen"
)

func TestRunBothCoverageDrop(t *testing.T) {
	w, err := worldgen.Generate(worldgen.TinyConfig(), 11)
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{
		World:    w,
		Accounts: 2,
		AttackParams: core.Params{
			CurrentYear:  2012,
			Mode:         core.Enhanced,
			MaxThreshold: 80,
		},
	}
	r.AttackParams.SchoolName = w.Schools[0].Name
	basePlat, protPlat, base, prot, err := r.RunBoth()
	if err != nil {
		t.Fatal(err)
	}
	gtBase := eval.NewGroundTruth(basePlat, 0)
	gtProt := eval.NewGroundTruth(protPlat, 0)
	oBase := gtBase.Evaluate(base.Select(60, true))
	oProt := gtProt.Evaluate(prot.Select(60, true))
	t.Logf("baseline found %.2f, with countermeasure %.2f", oBase.FoundFrac(), oProt.FoundFrac())
	// §8's claim: disabling reverse lookup collapses coverage (92% → 33%
	// in the paper at top-500). On the tiny world the drop is muted
	// (small cohorts, high public-list rates), so require only a clear
	// reduction here; the calibrated HS1 world in internal/experiments
	// asserts the paper-sized collapse.
	if oProt.FoundFrac() >= oBase.FoundFrac()*0.9 {
		t.Errorf("countermeasure barely reduced coverage: %.2f vs %.2f",
			oProt.FoundFrac(), oBase.FoundFrac())
	}
	// With the countermeasure, candidates must all have visible lists.
	world := protPlat.World()
	for _, c := range prot.Ranked {
		u, ok := protPlat.UserIDOf(c.ID)
		if !ok {
			t.Fatalf("unknown candidate %s", c.ID)
		}
		person := world.Person(u)
		if person.RegisteredMinorAt(world.Now) {
			t.Fatalf("registered minor %d reachable despite countermeasure", u)
		}
		if !person.Privacy.FriendListPublic {
			t.Fatalf("hidden-list user %d reachable despite countermeasure", u)
		}
	}
}

func TestRunBothSameWorldDifferentPolicyOnly(t *testing.T) {
	w, err := worldgen.Generate(worldgen.TinyConfig(), 13)
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{
		World:    w,
		Accounts: 2,
		AttackParams: core.Params{
			SchoolName:   w.Schools[0].Name,
			CurrentYear:  2012,
			Mode:         core.Basic,
			MaxThreshold: 60,
		},
		OSNConfig: osn.Config{SearchPerAccount: 50},
	}
	_, _, base, prot, err := r.RunBoth()
	if err != nil {
		t.Fatal(err)
	}
	// Seeds come from search, which the countermeasure does not affect.
	if len(base.Seeds) != len(prot.Seeds) {
		t.Errorf("seed sets differ: %d vs %d", len(base.Seeds), len(prot.Seeds))
	}
	// The candidate pool must shrink under the countermeasure.
	if prot.CandidateCount() >= base.CandidateCount() {
		t.Errorf("candidates did not shrink: %d vs %d", prot.CandidateCount(), base.CandidateCount())
	}
}
