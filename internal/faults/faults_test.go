package faults

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hsprofiler/internal/osn"
	"hsprofiler/internal/sim"
)

func TestDecideDeterministic(t *testing.T) {
	cfg := Composite(0.5, 42)
	a, b := New(cfg), New(cfg)
	keys := []string{"profile/u1", "friends/u1/0", "profile/u1", "search/0/0/1", "profile/u1"}
	for i, key := range keys {
		ka, da := a.Decide(key)
		kb, db := b.Decide(key)
		if ka != kb || da != db {
			t.Fatalf("step %d key %q: (%v,%v) vs (%v,%v)", i, key, ka, da, kb, db)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}

func TestDecideIndependentOfInterleaving(t *testing.T) {
	cfg := Composite(0.6, 7)
	// Per-key decision sequences must not depend on what other keys did in
	// between — that is what makes concurrent crawls deterministic.
	solo := New(cfg)
	var want []Kind
	for i := 0; i < 6; i++ {
		k, _ := solo.Decide("profile/u9")
		want = append(want, k)
	}
	mixed := New(cfg)
	for i := 0; i < 6; i++ {
		mixed.Decide("friends/u1/0")
		k, _ := mixed.Decide("profile/u9")
		mixed.Decide("search/0/0/0")
		if k != want[i] {
			t.Fatalf("attempt %d: %v with interleaving, %v without", i, k, want[i])
		}
	}
}

func TestMaxConsecutiveGuaranteesProgress(t *testing.T) {
	in := New(Config{Seed: 1, ServerError: 1}) // every eligible attempt faults
	for attempt := 0; attempt < 4; attempt++ {
		if k, _ := in.Decide("k"); k != ServerError {
			t.Fatalf("attempt %d: %v, want server-error", attempt, k)
		}
	}
	if k, _ := in.Decide("k"); k != None {
		t.Fatalf("attempt 4 should be fault-free, got %v", k)
	}
	// Other keys still have their own budget.
	if k, _ := in.Decide("other"); k != ServerError {
		t.Fatalf("fresh key should fault, got %v", k)
	}
}

func TestCompositeClampsAndSplits(t *testing.T) {
	c := Composite(0.5, 1)
	if got := c.total(); got < 0.499 || got > 0.501 {
		t.Fatalf("total %v, want 0.5", got)
	}
	if Composite(-1, 1).total() != 0 {
		t.Fatal("negative rate not clamped")
	}
	if got := Composite(9, 1).total(); got < 0.999 || got > 1.001 {
		t.Fatalf("overlarge rate clamped to %v", got)
	}
}

func TestClientDecoratorErrorMapping(t *testing.T) {
	cases := []struct {
		cfg  Config
		want error
	}{
		{Config{Seed: 1, ServerError: 1}, ErrInjected},
		{Config{Seed: 1, Throttle: 1}, osn.ErrThrottled},
		{Config{Seed: 1, Reset: 1}, ErrReset},
		{Config{Seed: 1, Truncate: 1}, ErrInjected},
		{Config{Seed: 1, Garble: 1}, ErrInjected},
	}
	for _, tc := range cases {
		c := New(tc.cfg).Client(nil)
		if err := c.fault("k"); !errors.Is(err, tc.want) {
			t.Fatalf("%+v: got %v, want %v", tc.cfg, err, tc.want)
		}
	}
}

// page is a minimal well-formed body middleware tests serve.
const page = `<html><body><div id="x">hello world, a body long enough to cut</div></body></html>`

func serveThrough(t *testing.T, cfg Config, method string) *http.Response {
	t.Helper()
	in := New(cfg)
	h := in.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		io.WriteString(w, page)
	}))
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	req, err := http.NewRequest(method, srv.URL+"/x", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestMiddlewareStatusFaults(t *testing.T) {
	if resp := serveThrough(t, Config{Seed: 1, ServerError: 1}, http.MethodGet); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("server-error fault: status %d", resp.StatusCode)
	}
	resp := serveThrough(t, Config{Seed: 1, Throttle: 1}, http.MethodGet)
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("throttle fault: status %d retry-after %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
}

func TestMiddlewareSkipsPost(t *testing.T) {
	resp := serveThrough(t, Config{Seed: 1, ServerError: 1}, http.MethodPost)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST must pass through, got %d", resp.StatusCode)
	}
}

func TestMiddlewareMangledBodiesAreDetectable(t *testing.T) {
	for _, cfg := range []Config{
		{Seed: 3, Truncate: 1},
		{Seed: 3, Garble: 1},
	} {
		resp := serveThrough(t, cfg, http.MethodGet)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mangle faults keep 200, got %d", resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if string(body) == page {
			t.Fatalf("%+v: body untouched", cfg)
		}
		// The missing trailer is what lets osnhttp's validatePage reject
		// the page as ErrMalformed instead of silently dropping rows.
		if strings.HasSuffix(strings.TrimRight(string(body), " \t\r\n"), "</body></html>") {
			t.Fatalf("mangled body kept its trailer: %q", body)
		}
	}
}

func TestMiddlewareReset(t *testing.T) {
	resp, err := http.Get(serveThroughURL(t, Config{Seed: 1, Reset: 1}))
	if err == nil {
		resp.Body.Close()
		t.Fatal("reset fault produced a clean response")
	}
}

// serveThroughURL starts a middleware-wrapped server and returns its URL
// (for tests that need the raw transport error).
func serveThroughURL(t *testing.T, cfg Config) string {
	t.Helper()
	h := New(cfg).Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, page)
	}))
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv.URL
}

func TestMangleHelpers(t *testing.T) {
	r := sim.New(5).Stream("t")
	cut := TruncateHTML(page, r)
	if len(cut) == 0 || len(cut) >= len(page) {
		t.Fatalf("truncate produced %d of %d bytes", len(cut), len(page))
	}
	if g := GarbleHTML(page, sim.New(5).Stream("t")); !strings.Contains(g, "#garbled") {
		t.Fatalf("garble lost its junk tail: %q", g)
	}
	if TruncateHTML("x", r) != "" {
		t.Fatal("sub-2-byte page should truncate to empty")
	}
}
