package faults_test

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"hsprofiler/internal/core"
	"hsprofiler/internal/crawler"
	"hsprofiler/internal/eval"
	"hsprofiler/internal/experiments"
	"hsprofiler/internal/faults"
	"hsprofiler/internal/osn"
	"hsprofiler/internal/osnhttp"
	"hsprofiler/internal/worldgen"
)

// The chaos tests run the paper's full HS1 attack against a fault-injected
// platform and require the outcome to be bit-identical to the fault-free
// run: the injector's MaxConsecutive cap (4) is below the session's retry
// budget (12), so every fault is survivable, and surviving all of them
// without perturbing a single verdict is exactly what the hardened crawl
// pipeline promises.

// hs1World generates the HS1 world once for all chaos runs.
func hs1World(t *testing.T) *worldgen.World {
	t.Helper()
	hs1WorldOnce.Do(func() {
		sc := experiments.HS1()
		hs1WorldCached, hs1WorldErr = worldgen.Generate(sc.Config, sc.Seed)
	})
	if hs1WorldErr != nil {
		t.Fatal(hs1WorldErr)
	}
	return hs1WorldCached
}

var (
	hs1WorldOnce   sync.Once
	hs1WorldCached *worldgen.World
	hs1WorldErr    error
)

// runHS1HTTP executes the enhanced HS1 attack over a real HTTP server whose
// handler is wrapped by the fault middleware at the given composite rate
// (0 = no middleware), and evaluates it against ground truth.
func runHS1HTTP(t *testing.T, world *worldgen.World, rate float64) (*core.Result, []eval.Outcome, faults.Stats) {
	t.Helper()
	sc := experiments.HS1()
	platform := osn.NewPlatform(world, osn.Facebook(), osn.Config{
		SearchPerAccount: sc.SearchPerAccount,
	})
	var handler http.Handler = osnhttp.NewServer(platform)
	var inj *faults.Injector
	if rate > 0 {
		inj = faults.New(faults.Composite(rate, 1))
		handler = inj.Middleware(handler)
	}
	server := httptest.NewServer(handler)
	defer server.Close()
	client := osnhttp.NewClient(server.URL, server.Client(), nil)
	if err := client.RegisterAccounts(sc.SeedAccounts); err != nil {
		t.Fatal(err)
	}
	sess := crawler.NewSession(client)
	sess.Backoff = func(int) {} // instant retries; determinism must not need real sleeps
	res, err := core.Run(sess, core.Params{
		SchoolName:   world.Schools[0].Name,
		CurrentYear:  sc.CurrentYear(),
		Mode:         core.Enhanced,
		MaxThreshold: sc.MaxThreshold,
		SeedAccounts: []int{0, 1},
	})
	if err != nil {
		t.Fatalf("HS1 run at fault rate %.2f: %v", rate, err)
	}
	truth := eval.NewGroundTruth(platform, 0)
	var outcomes []eval.Outcome
	for _, th := range sc.TableThresholds {
		outcomes = append(outcomes, truth.Evaluate(res.Select(th, true)))
	}
	var stats faults.Stats
	if inj != nil {
		stats = inj.Stats()
	}
	return res, outcomes, stats
}

// assertSameAttack requires two runs to agree bit-for-bit on everything the
// paper reports: the ranked candidate list and the found / correct-year /
// false-positive numbers at every table threshold.
func assertSameAttack(t *testing.T, label string, ref, got *core.Result, refOut, gotOut []eval.Outcome) {
	t.Helper()
	if len(got.Ranked) != len(ref.Ranked) {
		t.Fatalf("%s: ranking has %d candidates, fault-free %d", label, len(got.Ranked), len(ref.Ranked))
	}
	for i := range got.Ranked {
		a, b := got.Ranked[i], ref.Ranked[i]
		if a.ID != b.ID || a.Score != b.Score || a.PredGradYear != b.PredGradYear || a.Filtered != b.Filtered {
			t.Fatalf("%s: ranked[%d] differs: %+v vs %+v", label, i, a, b)
		}
	}
	if got.ExtendedCoreSize != ref.ExtendedCoreSize || got.SeedCoreSize != ref.SeedCoreSize {
		t.Fatalf("%s: core sizes differ: %d/%d vs %d/%d", label,
			got.SeedCoreSize, got.ExtendedCoreSize, ref.SeedCoreSize, ref.ExtendedCoreSize)
	}
	for i := range refOut {
		if gotOut[i] != refOut[i] {
			t.Fatalf("%s: outcome at threshold #%d differs:\n  faulted:    %v\n  fault-free: %v",
				label, i, gotOut[i], refOut[i])
		}
	}
}

// TestChaosHS1OverHTTP is the acceptance test for the failure model: the
// full HS1 enhanced+filtered attack, run through the HTTP stack at several
// composite fault rates, must reproduce the fault-free found/correct-year
// numbers exactly, with the faults visible only in the retry tally.
func TestChaosHS1OverHTTP(t *testing.T) {
	world := hs1World(t)
	ref, refOut, _ := runHS1HTTP(t, world, 0)
	if ref.Retries.Total() != 0 {
		t.Fatalf("fault-free run reported %d retries", ref.Retries.Total())
	}
	rates := []float64{0.05, 0.10}
	if !testing.Short() {
		rates = append(rates, 0.20)
	}
	for _, rate := range rates {
		res, out, stats := runHS1HTTP(t, world, rate)
		if stats.Total() == 0 {
			t.Fatalf("rate %.2f: injector fired no faults over %d requests", rate, stats.Requests)
		}
		if res.Retries.Total() == 0 {
			t.Fatalf("rate %.2f: %d faults injected but the run reports no retries (%s)",
				rate, stats.Total(), stats)
		}
		if res.Failures.Total() != 0 {
			t.Fatalf("rate %.2f: hard failures %+v; MaxConsecutive should make every fault survivable",
				rate, res.Failures)
		}
		assertSameAttack(t, stats.String(), ref, res, refOut, out)
		t.Logf("rate %.2f: %s; %d retries, result bit-identical", rate, stats, res.Retries.Total())
	}
}

// TestChaosHS1InProcess runs the same invariant through the in-process
// Client decorator (no HTTP): faults surface as typed errors instead of
// wire-level damage, and the outcome must still match the fault-free run.
func TestChaosHS1InProcess(t *testing.T) {
	world := hs1World(t)
	sc := experiments.HS1()
	run := func(rate float64) (*core.Result, []eval.Outcome, faults.Stats) {
		platform := osn.NewPlatform(world, osn.Facebook(), osn.Config{
			SearchPerAccount: sc.SearchPerAccount,
		})
		direct, err := crawler.NewDirect(platform, sc.SeedAccounts)
		if err != nil {
			t.Fatal(err)
		}
		var c crawler.Client = direct
		var inj *faults.Injector
		if rate > 0 {
			inj = faults.New(faults.Composite(rate, 7))
			c = inj.Client(c)
		}
		sess := crawler.NewSession(c)
		sess.Backoff = func(int) {}
		res, err := core.Run(sess, core.Params{
			SchoolName:   world.Schools[0].Name,
			CurrentYear:  sc.CurrentYear(),
			Mode:         core.Enhanced,
			MaxThreshold: sc.MaxThreshold,
			SeedAccounts: []int{0, 1},
		})
		if err != nil {
			t.Fatalf("in-process HS1 at rate %.2f: %v", rate, err)
		}
		truth := eval.NewGroundTruth(platform, 0)
		var outcomes []eval.Outcome
		for _, th := range sc.TableThresholds {
			outcomes = append(outcomes, truth.Evaluate(res.Select(th, true)))
		}
		var stats faults.Stats
		if inj != nil {
			stats = inj.Stats()
		}
		return res, outcomes, stats
	}
	ref, refOut, _ := run(0)
	res, out, stats := run(0.10)
	if stats.Total() == 0 || res.Retries.Total() == 0 {
		t.Fatalf("decorator injected %d faults, run retried %d times", stats.Total(), res.Retries.Total())
	}
	assertSameAttack(t, "in-process "+stats.String(), ref, res, refOut, out)
}
