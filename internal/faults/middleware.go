package faults

import (
	"bytes"
	"net/http"
	"strings"
	"time"
)

// Middleware wraps an http.Handler (typically osnhttp.NewServer) with fault
// injection. Requests are keyed by method + URI, so each logical crawl
// request has its own deterministic fault schedule regardless of arrival
// order.
//
// POST requests (account registration) pass through untouched: faults model
// the hostile crawl surface, and corrupting registration would change which
// accounts exist rather than how the crawl copes.
func (in *Injector) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			next.ServeHTTP(w, r)
			return
		}
		key := r.Method + " " + r.URL.RequestURI()
		kind, delay := in.Decide(key)
		if delay > 0 {
			time.Sleep(delay)
		}
		switch kind {
		case ServerError:
			http.Error(w, "injected server error", http.StatusInternalServerError)
		case Throttle:
			w.Header().Set("Retry-After", "1")
			http.Error(w, "injected throttle", http.StatusServiceUnavailable)
		case Reset:
			// net/http recovers ErrAbortHandler and severs the
			// connection without a response — the client sees EOF,
			// exactly like a mid-flight reset.
			panic(http.ErrAbortHandler)
		case Truncate, Garble:
			rec := &recorder{header: make(http.Header), code: http.StatusOK}
			next.ServeHTTP(rec, r)
			body := rec.body.String()
			// Only page bodies (HTML views or JSON API) of successful
			// responses are mangled; error responses keep their status
			// semantics. Truncating or garbling always yields invalid
			// JSON — a proper prefix plus junk — so the JSON client
			// classifies damage as ErrMalformed just like the HTML one.
			ct := rec.header.Get("Content-Type")
			if rec.code == http.StatusOK &&
				(strings.Contains(ct, "text/html") || strings.Contains(ct, "application/json")) {
				mr := in.mangleStream(key, 0)
				if kind == Truncate {
					body = TruncateHTML(body, mr)
				} else {
					body = GarbleHTML(body, mr)
				}
			}
			copyHeader(w.Header(), rec.header)
			w.Header().Del("Content-Length")
			w.WriteHeader(rec.code)
			w.Write([]byte(body))
		default:
			next.ServeHTTP(w, r)
		}
	})
}

// recorder buffers a response so the middleware can mangle it before it
// reaches the wire.
type recorder struct {
	header http.Header
	body   bytes.Buffer
	code   int
}

func (r *recorder) Header() http.Header { return r.header }

func (r *recorder) Write(b []byte) (int, error) { return r.body.Write(b) }

func (r *recorder) WriteHeader(code int) { r.code = code }

func copyHeader(dst, src http.Header) {
	for k, vs := range src {
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}
