package faults

import (
	"fmt"
	"time"

	"hsprofiler/internal/crawler"
	"hsprofiler/internal/osn"
)

// Client wraps a crawler.Client with the injector, for in-process runs that
// skip the HTTP stack. Truncate and Garble have no body to mangle here, so
// they surface as ErrInjected (the consumer-visible effect of an unusable
// page is the same: the request must be retried).
//
// Request keys deliberately exclude the account index: a retry that rotates
// accounts continues the same fault schedule instead of starting a fresh
// one, matching how a flaky backend looks to a crawler that swaps
// credentials.
type Client struct {
	inner crawler.Client
	in    *Injector
}

// Client decorates inner with fault injection.
func (in *Injector) Client(inner crawler.Client) *Client {
	return &Client{inner: inner, in: in}
}

var _ crawler.Client = (*Client)(nil)

// fault makes the decision for key and returns the injected error, or nil.
func (c *Client) fault(key string) error {
	kind, delay := c.in.Decide(key)
	if delay > 0 {
		time.Sleep(delay)
	}
	switch kind {
	case ServerError, Truncate, Garble:
		return ErrInjected
	case Throttle:
		return osn.ErrThrottled
	case Reset:
		return ErrReset
	}
	return nil
}

// Accounts implements crawler.Client.
func (c *Client) Accounts() int { return c.inner.Accounts() }

// LookupSchool implements crawler.Client.
func (c *Client) LookupSchool(name string) (osn.SchoolRef, error) {
	if err := c.fault("school/" + name); err != nil {
		return osn.SchoolRef{}, err
	}
	return c.inner.LookupSchool(name)
}

// Search implements crawler.Client.
func (c *Client) Search(acct, schoolID, page int) ([]osn.SearchResult, bool, error) {
	if err := c.fault(fmt.Sprintf("search/%d/%d/%d", acct, schoolID, page)); err != nil {
		return nil, false, err
	}
	return c.inner.Search(acct, schoolID, page)
}

// Profile implements crawler.Client.
func (c *Client) Profile(acct int, id osn.PublicID) (*osn.PublicProfile, error) {
	if err := c.fault("profile/" + string(id)); err != nil {
		return nil, err
	}
	return c.inner.Profile(acct, id)
}

// FriendPage implements crawler.Client.
func (c *Client) FriendPage(acct int, id osn.PublicID, page int) ([]osn.FriendRef, bool, error) {
	if err := c.fault(fmt.Sprintf("friends/%s/%d", id, page)); err != nil {
		return nil, false, err
	}
	return c.inner.FriendPage(acct, id, page)
}
