// Package faults injects deterministic, seed-driven failures into the
// simulated OSN's serving path. Real OSN crawls run for days against a
// platform that throttles, drops connections, serves partial pages and
// suspends accounts; the paper's Table 3 numbers come from exactly such a
// crawl. This package recreates that regime on demand so the crawl pipeline
// (crawler.Session, crawler.Fetcher, store resume) can be tested against it
// under `go test -race`, and so `cmd/osnd -faults` can serve a hostile
// platform for end-to-end runs.
//
// Determinism is the load-bearing property: every fault decision is a pure
// function of (seed, request key, attempt number), via independent sim
// streams. Two runs over the same request sequence see the same faults at
// the same points, and a retried request sees an independent — but
// reproducible — draw, so chaos tests can assert bit-identical attack
// results with and without faults.
package faults

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"hsprofiler/internal/obs"
	"hsprofiler/internal/obs/evlog"
	"hsprofiler/internal/sim"
)

// Injected fault errors, as surfaced by the in-process Client decorator.
// Both are transient: the crawler is expected to retry them.
var (
	// ErrInjected stands in for an HTTP 5xx / internal server error.
	ErrInjected = errors.New("faults: injected server error")
	// ErrReset stands in for a dropped TCP connection.
	ErrReset = errors.New("faults: injected connection reset")
)

// Kind enumerates the failure modes the injector can produce.
type Kind int

const (
	// None leaves the request untouched.
	None Kind = iota
	// ServerError fails the request with a 5xx / ErrInjected.
	ServerError
	// Throttle returns a spurious rate-limit response (HTTP 503 /
	// osn.ErrThrottled) even though the platform did not throttle.
	Throttle
	// Reset aborts the connection mid-response (HTTP) or returns ErrReset
	// (in-process).
	Reset
	// Truncate serves the page cut off mid-body.
	Truncate
	// Garble serves the page cut off with trailing junk bytes appended.
	Garble
	numKinds = int(Garble) // fault kinds, excluding None
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case ServerError:
		return "server-error"
	case Throttle:
		return "throttle"
	case Reset:
		return "reset"
	case Truncate:
		return "truncate"
	case Garble:
		return "garble"
	default:
		return "none"
	}
}

// Config sets per-request fault probabilities. Rates are independent
// probabilities in [0,1]; at most one fault fires per request (kinds are
// laid out on one uniform draw, in field order).
type Config struct {
	// Seed drives every decision. Same seed + same request sequence =
	// same faults.
	Seed uint64
	// ServerError is the probability of a 5xx.
	ServerError float64
	// Throttle is the probability of a spurious rate-limit response.
	Throttle float64
	// Reset is the probability of a connection abort.
	Reset float64
	// Truncate is the probability of a truncated body. HTTP only; the
	// in-process decorator maps it to ErrInjected.
	Truncate float64
	// Garble is the probability of a garbled body. HTTP only; the
	// in-process decorator maps it to ErrInjected.
	Garble float64
	// Latency is the probability of injected latency (drawn independently
	// of the failure kinds; a request can be both slow and faulted).
	Latency float64
	// MaxLatency bounds injected latency; zero disables latency faults.
	MaxLatency time.Duration
	// MaxConsecutive caps how many times in a row one request key can be
	// faulted, so a bounded-retry crawler is guaranteed to get through.
	// Zero means the default of 4.
	MaxConsecutive int
}

// Composite spreads one aggregate fault rate evenly across the five failure
// kinds — the "10% composite fault rate" of the chaos tests and the
// `osnd -faults 0.1` flag.
func Composite(rate float64, seed uint64) Config {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	per := rate / float64(numKinds)
	return Config{
		Seed:        seed,
		ServerError: per,
		Throttle:    per,
		Reset:       per,
		Truncate:    per,
		Garble:      per,
	}
}

// total is the aggregate failure probability.
func (c Config) total() float64 {
	return c.ServerError + c.Throttle + c.Reset + c.Truncate + c.Garble
}

// Stats counts injected faults by kind.
type Stats struct {
	ServerErrors int
	Throttles    int
	Resets       int
	Truncates    int
	Garbles      int
	Delays       int
	// Requests is the number of decisions taken.
	Requests int
}

// Total is the number of injected failures (latency excluded).
func (s Stats) Total() int {
	return s.ServerErrors + s.Throttles + s.Resets + s.Truncates + s.Garbles
}

// String summarizes the tally.
func (s Stats) String() string {
	return fmt.Sprintf("faults: %d/%d requests faulted (%d 5xx, %d throttle, %d reset, %d truncate, %d garble, %d delayed)",
		s.Total(), s.Requests, s.ServerErrors, s.Throttles, s.Resets, s.Truncates, s.Garbles, s.Delays)
}

// Injector makes deterministic fault decisions. Safe for concurrent use;
// note that decisions are keyed per request, so concurrent crawls see the
// same per-request faults regardless of interleaving.
type Injector struct {
	cfg  Config
	root *sim.Rand

	mu       sync.Mutex
	attempts map[string]int
	stats    Stats

	// kinds[k] counts injections of kind k; nil when uninstrumented.
	kinds     [numKinds + 1]*obs.Counter
	delays    *obs.Counter
	decisions *obs.Counter

	// lg records every injected fault as a "faults" event (nil = silent).
	lg *evlog.Logger
}

// New returns an injector for the config.
func New(cfg Config) *Injector {
	if cfg.MaxConsecutive <= 0 {
		cfg.MaxConsecutive = 4
	}
	return &Injector{
		cfg:      cfg,
		root:     sim.New(cfg.Seed),
		attempts: make(map[string]int),
	}
}

// Instrument publishes the injector's tally to the registry as
// faults_injected_total{kind=...}, faults_delays_total and
// faults_decisions_total, pre-registering every kind at zero so chaos
// tests (and scrapes of an idle osnd) can assert on the series before the
// first fault fires. A nil registry is a no-op. Returns the injector for
// chaining.
func (in *Injector) Instrument(reg *obs.Registry) *Injector {
	if reg == nil {
		return in
	}
	for k := ServerError; k <= Garble; k++ {
		in.kinds[k] = reg.Counter("faults_injected_total",
			"Faults injected into the serving path, by kind.", obs.L("kind", k.String()))
	}
	in.delays = reg.Counter("faults_delays_total", "Requests served with injected latency.")
	in.decisions = reg.Counter("faults_decisions_total", "Fault decisions taken (one per request attempt).")
	return in
}

// WithLog attaches an event logger: every injected fault and latency delay
// emits a "faults" warn event with its kind, request key and attempt, so a
// run report can line injected trouble up against the crawler's retries. A
// nil logger keeps the injector silent. Returns the injector for chaining.
func (in *Injector) WithLog(lg *evlog.Logger) *Injector {
	in.lg = lg
	return in
}

// Stats returns the running fault tally.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// stream derives the decision stream for one (key, attempt) pair.
func (in *Injector) stream(key string, attempt int) *sim.Rand {
	return in.root.Stream(key + "#" + strconv.Itoa(attempt))
}

// Decide returns the fault (and injected delay, possibly zero) for the next
// attempt of the request identified by key. Attempts are counted per key,
// so a retried request draws a fresh — but deterministic — decision, and
// after MaxConsecutive attempts the request is left alone, guaranteeing
// that a crawler with bounded retries makes progress.
func (in *Injector) Decide(key string) (Kind, time.Duration) {
	in.mu.Lock()
	attempt := in.attempts[key]
	in.attempts[key] = attempt + 1
	in.stats.Requests++
	in.mu.Unlock()
	in.decisions.Inc()

	var delay time.Duration
	r := in.stream(key, attempt)
	if in.cfg.MaxLatency > 0 && in.cfg.Latency > 0 && r.Float64() < in.cfg.Latency {
		delay = time.Duration(r.Float64() * float64(in.cfg.MaxLatency))
		in.count(func(s *Stats) { s.Delays++ })
		in.delays.Inc()
		in.lg.Warn(context.Background(), "faults", "latency injected",
			evlog.Str("key", key), evlog.Int("attempt", attempt),
			evlog.Dur("delay_ms", delay))
	}
	if attempt >= in.cfg.MaxConsecutive {
		return None, delay
	}
	p := r.Float64()
	kind := None
	switch {
	case p < in.cfg.ServerError:
		in.count(func(s *Stats) { s.ServerErrors++ })
		kind = ServerError
	case p < in.cfg.ServerError+in.cfg.Throttle:
		in.count(func(s *Stats) { s.Throttles++ })
		kind = Throttle
	case p < in.cfg.ServerError+in.cfg.Throttle+in.cfg.Reset:
		in.count(func(s *Stats) { s.Resets++ })
		kind = Reset
	case p < in.cfg.ServerError+in.cfg.Throttle+in.cfg.Reset+in.cfg.Truncate:
		in.count(func(s *Stats) { s.Truncates++ })
		kind = Truncate
	case p < in.cfg.total():
		in.count(func(s *Stats) { s.Garbles++ })
		kind = Garble
	}
	if kind != None {
		in.kinds[kind].Inc()
		in.lg.Warn(context.Background(), "faults", "fault injected",
			evlog.Str("kind", kind.String()), evlog.Str("key", key),
			evlog.Int("attempt", attempt))
	}
	return kind, delay
}

func (in *Injector) count(f func(*Stats)) {
	in.mu.Lock()
	f(&in.stats)
	in.mu.Unlock()
}

// mangleStream derives the body-mangling stream for a (key, attempt) pair,
// independent of the decision stream.
func (in *Injector) mangleStream(key string, attempt int) *sim.Rand {
	return in.root.Stream("mangle/" + key + "#" + strconv.Itoa(attempt))
}

// TruncateHTML cuts the page at a random interior point — the shape a
// half-written response has when the connection dies mid-transfer. The cut
// point is drawn from r, so callers with a fixed stream get a fixed cut.
func TruncateHTML(page string, r *sim.Rand) string {
	if len(page) < 2 {
		return ""
	}
	return page[:1+r.Intn(len(page)-1)]
}

// garbleJunk is what a garbled response trails off into: an opened tag that
// never closes, with attribute quoting left dangling. Parsers must treat
// the page as malformed rather than silently dropping the damaged rows.
const garbleJunk = `<div class="result" data-id="\x00\xff#garbled`

// GarbleHTML cuts the page like TruncateHTML and appends junk bytes — a
// response whose tail was overwritten by garbage rather than merely lost.
func GarbleHTML(page string, r *sim.Rand) string {
	return TruncateHTML(page, r) + garbleJunk
}
