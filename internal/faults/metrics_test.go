package faults

import (
	"strconv"
	"testing"
	"time"

	"hsprofiler/internal/obs"
)

// TestInjectorMetricsMatchStats hammers an instrumented injector and checks
// the exported counters agree exactly with the Stats tally — the same
// invariant the crawl metrics uphold for Effort.
func TestInjectorMetricsMatchStats(t *testing.T) {
	reg := obs.NewRegistry()
	in := New(Config{
		Seed:        42,
		ServerError: 0.1,
		Throttle:    0.1,
		Reset:       0.1,
		Truncate:    0.1,
		Garble:      0.1,
		Latency:     0.3,
		MaxLatency:  50 * time.Millisecond,
	}).Instrument(reg)
	for i := 0; i < 500; i++ {
		in.Decide("req-" + strconv.Itoa(i))
	}
	st := in.Stats()
	if st.Total() == 0 || st.Delays == 0 {
		t.Fatalf("fault rates produced nothing: %+v", st)
	}
	snap := reg.Counters()
	for kind, want := range map[string]int{
		"server-error": st.ServerErrors,
		"throttle":     st.Throttles,
		"reset":        st.Resets,
		"truncate":     st.Truncates,
		"garble":       st.Garbles,
	} {
		key := `faults_injected_total{kind="` + kind + `"}`
		if got := snap[key]; got != float64(want) {
			t.Errorf("%s = %v, Stats says %d", key, got, want)
		}
	}
	if got := snap["faults_decisions_total"]; got != float64(st.Requests) {
		t.Errorf("decisions = %v, Stats says %d", got, st.Requests)
	}
	if got := snap["faults_delays_total"]; got != float64(st.Delays) {
		t.Errorf("delays = %v, Stats says %d", got, st.Delays)
	}
}

// TestUninstrumentedInjectorDecides checks the nil-counter path: an
// injector that was never instrumented must behave identically.
func TestUninstrumentedInjectorDecides(t *testing.T) {
	a := New(Composite(0.3, 7))
	b := New(Composite(0.3, 7)).Instrument(nil)
	for i := 0; i < 100; i++ {
		key := "k" + strconv.Itoa(i)
		ka, _ := a.Decide(key)
		kb, _ := b.Decide(key)
		if ka != kb {
			t.Fatalf("decision diverged at %s: %v vs %v", key, ka, kb)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}
