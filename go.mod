module hsprofiler

go 1.22
