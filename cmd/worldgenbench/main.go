// Command worldgenbench benchmarks the sharded world generator and the
// snapshot formats, and verifies the determinism invariant while doing so:
// every worker count must produce the identical world fingerprint, or the
// run hard-fails — a benchmark that silently measured diverging worlds would
// be worse than no benchmark.
//
// Usage:
//
//	worldgenbench -out BENCH_worldgen.json                    # metro world, workers 1/4/8
//	worldgenbench -scenario metro -schools 1200 -out ...      # ~1M people
//	worldgenbench -skip-io                                    # generation sweep only
//
// The report is benchdiff-compatible: results are matched on the workers
// sweep point, ops/sec is people generated per second. Snapshot write/load
// timings for both formats ride along in a section benchdiff ignores.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"hsprofiler/internal/worldgen"
)

type result struct {
	Workers     int     `json:"workers"`
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"` // people per second
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type snapshotIO struct {
	BinBytes    int64   `json:"bin_bytes"`
	JSONBytes   int64   `json:"json_bytes"`
	BinWriteNs  int64   `json:"bin_write_ns"`
	JSONWriteNs int64   `json:"json_write_ns"`
	BinLoadNs   int64   `json:"bin_load_ns"`
	JSONLoadNs  int64   `json:"json_load_ns"`
	LoadSpeedup float64 `json:"load_speedup"` // json_load / bin_load
}

type reportOut struct {
	Scenario    string      `json:"scenario"`
	Seed        uint64      `json:"seed"`
	Workers     int         `json:"workers"` // max sweep point
	CPUs        int         `json:"cpus"`    // NumCPU of the machine that ran this
	People      int         `json:"people"`
	Edges       int         `json:"edges"`
	Fingerprint string      `json:"fingerprint"`
	Results     []result    `json:"results"`
	Snapshot    *snapshotIO `json:"snapshot,omitempty"`
}

func main() {
	scenario := flag.String("scenario", "metro", "world scenario: tiny, city, metro, hs1, hs2, hs3")
	schools := flag.Int("schools", 1200, "number of schools (city and metro scenarios)")
	seed := flag.Uint64("seed", 1, "generation seed")
	workersFlag := flag.String("workers", "1,4,8", "comma-separated worker counts to sweep")
	out := flag.String("out", "", "write the JSON report here (default stdout)")
	skipIO := flag.Bool("skip-io", false, "skip the snapshot write/load measurements")
	flag.Parse()

	var cfg worldgen.Config
	switch *scenario {
	case "tiny":
		cfg = worldgen.TinyConfig()
	case "city":
		cfg = worldgen.CityConfig(*schools)
	case "metro":
		cfg = worldgen.MetroConfig(*schools)
	case "hs1":
		cfg = worldgen.HS1Config()
	case "hs2":
		cfg = worldgen.HS2Config()
	case "hs3":
		cfg = worldgen.HS3Config()
	default:
		fatal(fmt.Errorf("unknown scenario %q", *scenario))
	}
	var sweep []int
	for _, s := range strings.Split(*workersFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fatal(fmt.Errorf("bad -workers element %q", s))
		}
		sweep = append(sweep, n)
	}
	if len(sweep) == 0 {
		fatal(fmt.Errorf("empty -workers sweep"))
	}

	rep := reportOut{Scenario: *scenario, Seed: *seed, CPUs: runtime.NumCPU()}
	var firstFP string
	var lastWorld *worldgen.World
	for _, workers := range sweep {
		if workers > rep.Workers {
			rep.Workers = workers
		}
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		w, err := worldgen.GenerateParallel(cfg, *seed, workers)
		if err != nil {
			fatal(err)
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms1)

		fp, err := w.Fingerprint()
		if err != nil {
			fatal(err)
		}
		if firstFP == "" {
			firstFP = fp
			rep.People = len(w.People)
			rep.Edges = w.Frozen().NumEdges()
			rep.Fingerprint = fp
		} else if fp != firstFP {
			// The determinism invariant broke. Report where, not just that.
			d := worldgen.DiffWorlds(lastWorld, w)
			fatal(fmt.Errorf("DETERMINISM FAILURE: workers=%d fingerprint %s != %s; first divergence: %s",
				workers, fp, firstFP, d))
		}
		lastWorld = w
		rep.Results = append(rep.Results, result{
			Workers:     workers,
			NsPerOp:     float64(elapsed.Nanoseconds()),
			OpsPerSec:   float64(len(w.People)) / elapsed.Seconds(),
			BytesPerOp:  int64(ms1.TotalAlloc - ms0.TotalAlloc),
			AllocsPerOp: int64(ms1.Mallocs - ms0.Mallocs),
		})
		fmt.Fprintf(os.Stderr, "workers=%d: %d people, %d edges in %s (%.0f people/s)\n",
			workers, len(w.People), w.Frozen().NumEdges(), elapsed.Round(time.Millisecond),
			float64(len(w.People))/elapsed.Seconds())
	}

	if !*skipIO {
		rep.Snapshot = measureIO(lastWorld)
		fmt.Fprintf(os.Stderr, "snapshot: bin %s/%s write/load, json %s/%s — binary loads %.1fx faster\n",
			time.Duration(rep.Snapshot.BinWriteNs).Round(time.Millisecond),
			time.Duration(rep.Snapshot.BinLoadNs).Round(time.Millisecond),
			time.Duration(rep.Snapshot.JSONWriteNs).Round(time.Millisecond),
			time.Duration(rep.Snapshot.JSONLoadNs).Round(time.Millisecond),
			rep.Snapshot.LoadSpeedup)
	}

	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		dst = f
	}
	enc := json.NewEncoder(dst)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
}

// measureIO times snapshot write and load for both formats against tmpfiles.
func measureIO(w *worldgen.World) *snapshotIO {
	dir, err := os.MkdirTemp("", "worldgenbench")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	io := &snapshotIO{}

	binPath := dir + "/world.bin"
	start := time.Now()
	if err := w.WriteFile(binPath, worldgen.FormatBinary); err != nil {
		fatal(err)
	}
	io.BinWriteNs = time.Since(start).Nanoseconds()
	if st, err := os.Stat(binPath); err == nil {
		io.BinBytes = st.Size()
	}

	jsonPath := dir + "/world.json"
	start = time.Now()
	if err := w.WriteFile(jsonPath, worldgen.FormatJSON); err != nil {
		fatal(err)
	}
	io.JSONWriteNs = time.Since(start).Nanoseconds()
	if st, err := os.Stat(jsonPath); err == nil {
		io.JSONBytes = st.Size()
	}

	start = time.Now()
	fromBin, err := worldgen.ReadSnapshotFile(binPath)
	if err != nil {
		fatal(err)
	}
	io.BinLoadNs = time.Since(start).Nanoseconds()

	start = time.Now()
	fromJSON, err := worldgen.ReadSnapshotFile(jsonPath)
	if err != nil {
		fatal(err)
	}
	io.JSONLoadNs = time.Since(start).Nanoseconds()

	if d := worldgen.DiffWorlds(fromBin, fromJSON); d != "" {
		fatal(fmt.Errorf("FORMAT EQUIVALENCE FAILURE: binary and JSON reloads diverge: %s", d))
	}
	if io.BinLoadNs > 0 {
		io.LoadSpeedup = float64(io.JSONLoadNs) / float64(io.BinLoadNs)
	}
	return io
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "worldgenbench: %v\n", err)
	os.Exit(1)
}
