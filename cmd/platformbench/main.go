// Command platformbench measures the platform's aggregate read throughput
// at several GOMAXPROCS settings and writes the result as JSON, the CI
// artefact that tracks how the two-plane refactor scales. Each setting
// runs the same mixed Profile / FriendPage / SchoolSearch workload as the
// root BenchmarkPlatformConcurrent, spread over per-worker accounts.
//
// With -rotate the same sweep runs while a background driver evolves the
// world and rotates the serving epoch on an interval — the artefact that
// tracks what epoch rotation costs the read path (BENCH_epoch.json).
//
// Usage:
//
//	platformbench -out BENCH_platform.json
//	platformbench -procs 1,4,8 -scenario tiny
//	platformbench -rotate 50ms -out BENCH_epoch.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hsprofiler/internal/osn"
	"hsprofiler/internal/sim"
	"hsprofiler/internal/worldgen"
)

// Result is one GOMAXPROCS point of the sweep.
type Result struct {
	Procs       int     `json:"procs"`
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// EpochRotation summarizes the background rotations that ran under the
// sweep in -rotate mode: how often the epoch swapped and what each swap
// cost wall-clock (world evolution excluded — only the AdvanceEpoch
// build+swap the serving plane pays for). benchdiff decodes reports with
// encoding/json and ignores fields it does not know, so this block rides
// along without a schema change there.
type EpochRotation struct {
	Rotations  int     `json:"rotations"`
	IntervalMS float64 `json:"interval_ms"`
	SwapP50MS  float64 `json:"swap_p50_ms"`
	SwapP99MS  float64 `json:"swap_p99_ms"`
	SwapMaxMS  float64 `json:"swap_max_ms"`
}

// Report is the full BENCH_platform.json document.
type Report struct {
	Scenario   string         `json:"scenario"`
	Seed       uint64         `json:"seed"`
	Workers    int            `json:"workers"`
	NumCPU     int            `json:"num_cpu"`
	GoVersion  string         `json:"go_version"`
	Results    []Result       `json:"results"`
	SpeedupMax float64        `json:"speedup_max_vs_1"`
	FrozenIn   string         `json:"freeze_duration"`
	Epoch      *EpochRotation `json:"epoch_rotation,omitempty"`
	Timestamp  time.Time      `json:"timestamp"`
}

func main() {
	out := flag.String("out", "BENCH_platform.json", "output JSON path (- for stdout)")
	scenario := flag.String("scenario", "tiny", "world scenario: tiny, hs1, hs2, hs3")
	seed := flag.Uint64("seed", 11, "world seed")
	procsFlag := flag.String("procs", "1,4,8", "comma-separated GOMAXPROCS settings to sweep")
	workers := flag.Int("workers", 64, "accounts hammering the platform")
	rotate := flag.Duration("rotate", 0, "evolve the world and rotate the serving epoch on this interval during each sweep point (0 = static world)")
	flag.Parse()

	var cfg worldgen.Config
	switch *scenario {
	case "tiny":
		cfg = worldgen.TinyConfig()
	case "hs1":
		cfg = worldgen.HS1Config()
	case "hs2":
		cfg = worldgen.HS2Config()
	case "hs3":
		cfg = worldgen.HS3Config()
	default:
		fatal(fmt.Errorf("unknown scenario %q", *scenario))
	}
	var procs []int
	for _, s := range strings.Split(*procsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fatal(fmt.Errorf("bad -procs entry %q", s))
		}
		procs = append(procs, n)
	}

	w, err := worldgen.Generate(cfg, *seed)
	if err != nil {
		fatal(err)
	}
	p := osn.NewPlatform(w, osn.Facebook(), osn.Config{})
	toks := make([]string, *workers)
	for i := range toks {
		tok, err := p.RegisterAccount(fmt.Sprintf("bench%d", i), sim.Date{Year: 1980, Month: 1, Day: 1})
		if err != nil {
			fatal(err)
		}
		toks[i] = tok
	}
	first, _, err := p.SchoolSearch(toks[0], 0, 0)
	if err != nil {
		fatal(err)
	}
	var targets []osn.PublicID
	for _, sr := range first {
		pp, err := p.Profile(toks[0], sr.ID)
		if err != nil {
			fatal(err)
		}
		if pp.FriendListVisible {
			targets = append(targets, sr.ID)
		}
	}
	if len(targets) == 0 {
		fatal(fmt.Errorf("no visible friend lists in %s world", *scenario))
	}

	rep := Report{
		Scenario:  *scenario,
		Seed:      *seed,
		Workers:   *workers,
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
		FrozenIn:  p.FreezeDuration().String(),
		Timestamp: time.Now().UTC(),
	}
	// In -rotate mode a background driver keeps evolving the world and
	// swapping epochs underneath the sweep; the reported throughput is the
	// read path's cost WHILE rotation happens, and the swap latencies feed
	// the epoch_rotation block. The simulated year keeps advancing across
	// sweep points — one continuous timeline, like a live deployment.
	// Note: testing.Benchmark charges the rotator's allocations to the
	// process, so allocs_per_op is only meaningful in static mode.
	var (
		swapMu sync.Mutex
		swaps  []time.Duration
		year   int
	)
	evCfg := worldgen.DefaultEvolveConfig()
	startRotator := func() (stop func()) {
		done := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(*rotate)
			defer tick.Stop()
			for {
				select {
				case <-done:
					return
				case <-tick.C:
					year++
					if _, err := worldgen.Evolve(w, evCfg, year, 4); err != nil {
						fatal(fmt.Errorf("evolve year %d: %w", year, err))
					}
					start := time.Now()
					p.AdvanceEpoch(context.Background())
					swapMu.Lock()
					swaps = append(swaps, time.Since(start))
					swapMu.Unlock()
				}
			}
		}()
		return func() { close(done); wg.Wait() }
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, n := range procs {
		runtime.GOMAXPROCS(n)
		var stopRotator func()
		if *rotate > 0 {
			stopRotator = startRotator()
		}
		br := testing.Benchmark(func(b *testing.B) {
			var next atomic.Int64
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				tok := toks[int(next.Add(1)-1)%len(toks)]
				i := 0
				for pb.Next() {
					id := targets[i%len(targets)]
					switch i % 3 {
					case 0:
						p.Profile(tok, id)
					case 1:
						p.FriendPage(tok, id, 0)
					default:
						p.SchoolSearch(tok, 0, i%4)
					}
					i++
				}
			})
		})
		if stopRotator != nil {
			stopRotator()
		}
		nsPerOp := float64(br.T.Nanoseconds()) / float64(br.N)
		rep.Results = append(rep.Results, Result{
			Procs:       n,
			NsPerOp:     nsPerOp,
			OpsPerSec:   1e9 / nsPerOp,
			BytesPerOp:  br.AllocedBytesPerOp(),
			AllocsPerOp: br.AllocsPerOp(),
		})
		fmt.Fprintf(os.Stderr, "platformbench: GOMAXPROCS=%d  %.0f ns/op  %.0f ops/sec  %d B/op\n",
			n, nsPerOp, 1e9/nsPerOp, br.AllocedBytesPerOp())
	}
	if len(rep.Results) > 1 && rep.Results[0].Procs == 1 {
		base := rep.Results[0].OpsPerSec
		for _, r := range rep.Results[1:] {
			if s := r.OpsPerSec / base; s > rep.SpeedupMax {
				rep.SpeedupMax = s
			}
		}
	}
	if *rotate > 0 {
		if len(swaps) == 0 {
			fatal(fmt.Errorf("-rotate %v produced no epoch swaps; lengthen the run or shorten the interval", *rotate))
		}
		rep.Epoch = &EpochRotation{
			Rotations:  len(swaps),
			IntervalMS: float64(rotate.Nanoseconds()) / 1e6,
			SwapP50MS:  ms(percentile(swaps, 0.50)),
			SwapP99MS:  ms(percentile(swaps, 0.99)),
			SwapMaxMS:  ms(percentile(swaps, 1)),
		}
		fmt.Fprintf(os.Stderr, "platformbench: %d epoch rotations, swap p50 %.2fms p99 %.2fms max %.2fms\n",
			rep.Epoch.Rotations, rep.Epoch.SwapP50MS, rep.Epoch.SwapP99MS, rep.Epoch.SwapMaxMS)
	}

	f := os.Stdout
	if *out != "-" {
		var err error
		f, err = os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "platformbench: wrote %s\n", *out)
	}
}

// percentile returns the q-th quantile of the swap latencies (q in (0,1];
// q=1 is the max). The slice is sorted in place.
func percentile(ds []time.Duration, q float64) time.Duration {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	idx := int(q*float64(len(ds))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(ds) {
		idx = len(ds) - 1
	}
	return ds[idx]
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "platformbench: %v\n", err)
	os.Exit(1)
}
