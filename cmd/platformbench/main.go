// Command platformbench measures the platform's aggregate read throughput
// at several GOMAXPROCS settings and writes the result as JSON, the CI
// artefact that tracks how the two-plane refactor scales. Each setting
// runs the same mixed Profile / FriendPage / SchoolSearch workload as the
// root BenchmarkPlatformConcurrent, spread over per-worker accounts.
//
// With -rotate the same sweep runs while a background driver evolves the
// world and rotates the serving epoch on an interval — the artefact that
// tracks what epoch rotation costs the read path (BENCH_epoch.json). Each
// rotation takes the incremental path: the evolve delta patches the CSR
// snapshot in place of a rebuild, profile views re-render only for the
// dirty users, and friend lists need no build at all (they are served
// straight from the patched CSR rows). The report separates build (off the
// read path) from swap (the atomic publish); after the sweep a best-of-3
// paired comparison times the incremental advance against the retained
// full-rebuild path on an otherwise idle machine for the speedup claim.
//
// Usage:
//
//	platformbench -out BENCH_platform.json
//	platformbench -procs 1,4,8 -scenario tiny
//	platformbench -scenario metro -schools 40 -rotate 2s -out BENCH_epoch.json
//	platformbench -world metro.world -rotate 2s
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hsprofiler/internal/osn"
	"hsprofiler/internal/sim"
	"hsprofiler/internal/socialgraph"
	"hsprofiler/internal/worldgen"
)

// Result is one GOMAXPROCS point of the sweep.
type Result struct {
	Procs       int     `json:"procs"`
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// EpochRotation summarizes the background rotations that ran under the
// sweep in -rotate mode. Build is the off-read-path epoch construction
// (the incremental dirty-set patch); swap is only the atomic publish plus
// retire accounting — the part readers can even notice. The *_avg build
// breakdown and the dirty-set sizes say where incremental build time goes
// and how big the deltas were; full_build_ms / csr_rebuild_ms are a
// one-shot O(world) baseline measured after the sweep on the same world,
// and speedup_vs_full compares the two uncontended paths. benchdiff decodes
// reports with encoding/json and ignores fields it does not know, so older
// reports without the breakdown still parse.
type EpochRotation struct {
	Rotations   int     `json:"rotations"`
	Incremental int     `json:"incremental"`
	IntervalMS  float64 `json:"interval_ms"`
	BuildP50MS  float64 `json:"build_p50_ms"`
	BuildP99MS  float64 `json:"build_p99_ms"`
	BuildMaxMS  float64 `json:"build_max_ms"`
	SwapP50MS   float64 `json:"swap_p50_ms"`
	SwapP99MS   float64 `json:"swap_p99_ms"`
	SwapMaxMS   float64 `json:"swap_max_ms"`
	// Delta sizes, averaged over incremental rotations.
	DirtyRowsAvg     float64 `json:"dirty_rows_avg"`
	DirtyProfilesAvg float64 `json:"dirty_profiles_avg"`
	// Incremental build breakdown (ms, averaged): CSR row patching,
	// profile re-render, index patching. Friend lists have no build
	// phase — they are served from the patched CSR directly.
	CSRPatchMSAvg float64 `json:"csr_patch_ms_avg"`
	ProfilesMSAvg float64 `json:"profiles_ms_avg"`
	IndexesMSAvg  float64 `json:"indexes_ms_avg"`
	// Paired uncontended comparison on adjacent one-year deltas, measured
	// after the sweep with no read load (the sweep percentiles above are
	// contended by design — they answer "what does rotation cost while
	// serving"; this pair answers "how much cheaper is the incremental
	// path"). inc_* is the incremental epoch advance (CSR patch + dirty-set
	// view build); full/rebuild is the full-rebuild path (ApplyDeltaRebuild
	// + O(world) view build) on the next year's delta.
	IncCSRPatchMS float64 `json:"inc_csr_patch_ms"`
	IncBuildMS    float64 `json:"inc_build_ms"`
	CSRRebuildMS  float64 `json:"csr_rebuild_ms"`
	FullBuildMS   float64 `json:"full_build_ms"`
	SpeedupVsFull float64 `json:"speedup_vs_full"`
}

// Report is the full BENCH_platform.json document.
type Report struct {
	Scenario   string         `json:"scenario"`
	Seed       uint64         `json:"seed"`
	Users      int            `json:"users"`
	Edges      int            `json:"edges"`
	Workers    int            `json:"workers"`
	NumCPU     int            `json:"num_cpu"`
	GoVersion  string         `json:"go_version"`
	Results    []Result       `json:"results"`
	SpeedupMax float64        `json:"speedup_max_vs_1"`
	FrozenIn   string         `json:"freeze_duration"`
	Epoch      *EpochRotation `json:"epoch_rotation,omitempty"`
	Timestamp  time.Time      `json:"timestamp"`
}

func main() {
	out := flag.String("out", "BENCH_platform.json", "output JSON path (- for stdout)")
	scenario := flag.String("scenario", "tiny", "world scenario: tiny, hs1, hs2, hs3, city, metro")
	schools := flag.Int("schools", 40, "number of schools (city and metro scenarios)")
	worldFile := flag.String("world", "", "load a world snapshot instead of generating (overrides -scenario/-seed)")
	seed := flag.Uint64("seed", 11, "world seed")
	procsFlag := flag.String("procs", "1,4,8", "comma-separated GOMAXPROCS settings to sweep")
	workers := flag.Int("workers", 64, "accounts hammering the platform")
	rotate := flag.Duration("rotate", 0, "evolve the world and rotate the serving epoch on this interval during each sweep point (0 = static world)")
	evolveWorkers := flag.Int("evolve-workers", 4, "workers for the evolve step and CSR patch in -rotate mode")
	flag.Parse()

	var procs []int
	for _, s := range strings.Split(*procsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fatal(fmt.Errorf("bad -procs entry %q", s))
		}
		procs = append(procs, n)
	}
	if *evolveWorkers < 1 {
		fatal(fmt.Errorf("-evolve-workers must be at least 1, got %d", *evolveWorkers))
	}

	var w *worldgen.World
	var err error
	if *worldFile != "" {
		*scenario = *worldFile
		w, err = worldgen.ReadSnapshotFile(*worldFile)
	} else {
		var cfg worldgen.Config
		switch *scenario {
		case "tiny":
			cfg = worldgen.TinyConfig()
		case "hs1":
			cfg = worldgen.HS1Config()
		case "hs2":
			cfg = worldgen.HS2Config()
		case "hs3":
			cfg = worldgen.HS3Config()
		case "city":
			cfg = worldgen.CityConfig(*schools)
		case "metro":
			cfg = worldgen.MetroConfig(*schools)
		default:
			fatal(fmt.Errorf("unknown scenario %q", *scenario))
		}
		if *scenario == "city" || *scenario == "metro" {
			// The large scenarios stream straight to CSR: no mutable
			// graph, which is exactly the frozen-only world the
			// incremental rotation path exists for.
			*scenario = fmt.Sprintf("%s-%d", *scenario, *schools)
			w, err = worldgen.GenerateParallel(cfg, *seed, runtime.NumCPU())
		} else {
			w, err = worldgen.Generate(cfg, *seed)
		}
	}
	if err != nil {
		fatal(err)
	}
	p := osn.NewPlatform(w, osn.Facebook(), osn.Config{})
	toks := make([]string, *workers)
	for i := range toks {
		tok, err := p.RegisterAccount(fmt.Sprintf("bench%d", i), sim.Date{Year: 1980, Month: 1, Day: 1})
		if err != nil {
			fatal(err)
		}
		toks[i] = tok
	}
	first, _, err := p.SchoolSearch(toks[0], 0, 0)
	if err != nil {
		fatal(err)
	}
	var targets []osn.PublicID
	for _, sr := range first {
		pp, err := p.Profile(toks[0], sr.ID)
		if err != nil {
			fatal(err)
		}
		if pp.FriendListVisible {
			targets = append(targets, sr.ID)
		}
	}
	if len(targets) == 0 {
		fatal(fmt.Errorf("no visible friend lists in %s world", *scenario))
	}

	frozen := w.Frozen()
	rep := Report{
		Scenario:  *scenario,
		Seed:      w.Seed,
		Users:     frozen.NumUsers(),
		Edges:     frozen.NumEdges(),
		Workers:   *workers,
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
		FrozenIn:  p.FreezeDuration().String(),
		Timestamp: time.Now().UTC(),
	}
	// In -rotate mode a background driver keeps evolving the world and
	// swapping epochs underneath the sweep; the reported throughput is the
	// read path's cost WHILE rotation happens, and the per-rotation
	// EpochStats feed the epoch_rotation block. The simulated year keeps
	// advancing across sweep points — one continuous timeline, like a live
	// deployment. Note: testing.Benchmark charges the rotator's allocations
	// to the process, so allocs_per_op is only meaningful in static mode.
	var (
		statsMu sync.Mutex
		stats   []osn.EpochStats
		patches []socialgraph.PatchStats
		year    int
	)
	ev := worldgen.NewEvolver(worldgen.DefaultEvolveConfig(), *evolveWorkers)
	startRotator := func() (stop func()) {
		done := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(*rotate)
			defer tick.Stop()
			for {
				select {
				case <-done:
					return
				case <-tick.C:
					year++
					d, err := ev.Step(w, year)
					if err != nil {
						fatal(fmt.Errorf("evolve year %d: %w", year, err))
					}
					st := p.AdvanceEpochDelta(context.Background(), d)
					statsMu.Lock()
					stats = append(stats, st)
					patches = append(patches, d.Patch)
					statsMu.Unlock()
				}
			}
		}()
		return func() { close(done); wg.Wait() }
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, n := range procs {
		runtime.GOMAXPROCS(n)
		var stopRotator func()
		if *rotate > 0 {
			stopRotator = startRotator()
		}
		br := testing.Benchmark(func(b *testing.B) {
			var next atomic.Int64
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				tok := toks[int(next.Add(1)-1)%len(toks)]
				// Friend pages render into a per-worker buffer fed back
				// on every call — the platform's zero-allocation read
				// path (FriendPageInto).
				var fbuf []osn.FriendRef
				i := 0
				for pb.Next() {
					id := targets[i%len(targets)]
					switch i % 3 {
					case 0:
						p.Profile(tok, id)
					case 1:
						fbuf, _, _ = p.FriendPageInto(fbuf, tok, id, 0)
					default:
						p.SchoolSearch(tok, 0, i%4)
					}
					i++
				}
			})
		})
		if stopRotator != nil {
			stopRotator()
		}
		nsPerOp := float64(br.T.Nanoseconds()) / float64(br.N)
		rep.Results = append(rep.Results, Result{
			Procs:       n,
			NsPerOp:     nsPerOp,
			OpsPerSec:   1e9 / nsPerOp,
			BytesPerOp:  br.AllocedBytesPerOp(),
			AllocsPerOp: br.AllocsPerOp(),
		})
		fmt.Fprintf(os.Stderr, "platformbench: GOMAXPROCS=%d  %.0f ns/op  %.0f ops/sec  %d B/op\n",
			n, nsPerOp, 1e9/nsPerOp, br.AllocedBytesPerOp())
	}
	if len(rep.Results) > 1 && rep.Results[0].Procs == 1 {
		base := rep.Results[0].OpsPerSec
		for _, r := range rep.Results[1:] {
			if s := r.OpsPerSec / base; s > rep.SpeedupMax {
				rep.SpeedupMax = s
			}
		}
	}
	if *rotate > 0 {
		if len(stats) == 0 {
			// Still useful: the paired comparison below rotates on its own.
			fmt.Fprintf(os.Stderr, "platformbench: warning: -rotate %v produced no epoch swaps during the sweep; contended percentiles will be empty\n", *rotate)
		}
		rep.Epoch = rotationSummary(*rotate, stats, patches)
		// Paired uncontended comparison: one year advanced incrementally,
		// the next through the full-rebuild path (ApplyDeltaRebuild on the
		// pre-step snapshot + O(world) view build — what every rotation
		// used to cost), both with the read load stopped so the two sides
		// see the same machine. Three pairs run back to back and each side
		// keeps its fastest pair — minimum-of-N is how wall-clock benchmarks
		// are read on a box where GC and page-fault timing move between
		// runs; both sides get the same treatment.
		const pairs = 3
		for pair := 1; pair <= pairs; pair++ {
			year++
			d, err := ev.Step(w, year)
			if err != nil {
				fatal(fmt.Errorf("evolve year %d: %w", year, err))
			}
			inc := p.AdvanceEpochDelta(context.Background(), d)
			if !inc.Incremental {
				fatal(fmt.Errorf("paired comparison: advance did not take the incremental path"))
			}
			incCSR := ms(d.Patch.Prep + d.Patch.Copy + d.Patch.Merge)
			incBuild := ms(inc.Build)
			fmt.Fprintf(os.Stderr, "platformbench: pair %d/%d inc: patch prep %.0f copy %.0f merge %.0f; views profiles %.0f indexes %.0f (ms)\n",
				pair, pairs, ms(d.Patch.Prep), ms(d.Patch.Copy), ms(d.Patch.Merge),
				ms(inc.Profiles), ms(inc.Indexes))
			if rep.Epoch.IncCSRPatchMS == 0 || incCSR+incBuild < rep.Epoch.IncCSRPatchMS+rep.Epoch.IncBuildMS {
				rep.Epoch.IncCSRPatchMS, rep.Epoch.IncBuildMS = incCSR, incBuild
			}
			year++
			base := w.Frozen()
			d2, err := ev.Step(w, year)
			if err != nil {
				fatal(fmt.Errorf("evolve year %d: %w", year, err))
			}
			csrStart := time.Now()
			if _, err := socialgraph.ApplyDeltaRebuild(base, d2.Added, d2.Removed, *evolveWorkers); err != nil {
				fatal(fmt.Errorf("full CSR rebuild: %w", err))
			}
			csrMS := ms(time.Since(csrStart))
			full := p.AdvanceEpoch(context.Background())
			fullMS := ms(full.Build)
			fmt.Fprintf(os.Stderr, "platformbench: pair %d/%d full: csr rebuild %.0f, views %.0f (ms)\n",
				pair, pairs, csrMS, fullMS)
			if rep.Epoch.CSRRebuildMS == 0 || csrMS+fullMS < rep.Epoch.CSRRebuildMS+rep.Epoch.FullBuildMS {
				rep.Epoch.CSRRebuildMS, rep.Epoch.FullBuildMS = csrMS, fullMS
			}
		}
		if incTotal := rep.Epoch.IncCSRPatchMS + rep.Epoch.IncBuildMS; incTotal > 0 {
			rep.Epoch.SpeedupVsFull = (rep.Epoch.CSRRebuildMS + rep.Epoch.FullBuildMS) / incTotal
		}
		fmt.Fprintf(os.Stderr, "platformbench: %d rotations (%d incremental), contended build p50 %.2fms p99 %.2fms, swap p50 %.3fms\n",
			rep.Epoch.Rotations, rep.Epoch.Incremental, rep.Epoch.BuildP50MS, rep.Epoch.BuildP99MS, rep.Epoch.SwapP50MS)
		fmt.Fprintf(os.Stderr, "platformbench: paired advance: incremental %.0fms (csr %.0f + views %.0f) vs full %.0fms (csr %.0f + views %.0f) = %.1fx\n",
			rep.Epoch.IncCSRPatchMS+rep.Epoch.IncBuildMS, rep.Epoch.IncCSRPatchMS, rep.Epoch.IncBuildMS,
			rep.Epoch.CSRRebuildMS+rep.Epoch.FullBuildMS, rep.Epoch.CSRRebuildMS, rep.Epoch.FullBuildMS,
			rep.Epoch.SpeedupVsFull)
	}

	f := os.Stdout
	if *out != "-" {
		var err error
		f, err = os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "platformbench: wrote %s\n", *out)
	}
}

// rotationSummary folds the per-rotation stats into the report block.
func rotationSummary(interval time.Duration, stats []osn.EpochStats, patches []socialgraph.PatchStats) *EpochRotation {
	builds := make([]time.Duration, 0, len(stats))
	swaps := make([]time.Duration, 0, len(stats))
	er := &EpochRotation{
		Rotations:  len(stats),
		IntervalMS: ms(interval),
	}
	var dirtyRows, dirtyProfiles int
	var csrPatch, profiles, indexes time.Duration
	for i, st := range stats {
		builds = append(builds, st.Build)
		swaps = append(swaps, st.Swap)
		if !st.Incremental {
			continue
		}
		er.Incremental++
		dirtyRows += st.DirtyRows
		dirtyProfiles += st.DirtyProfiles
		profiles += st.Profiles
		indexes += st.Indexes
		pt := patches[i]
		csrPatch += pt.Prep + pt.Copy + pt.Merge
	}
	if n := float64(er.Incremental); n > 0 {
		er.DirtyRowsAvg = float64(dirtyRows) / n
		er.DirtyProfilesAvg = float64(dirtyProfiles) / n
		er.CSRPatchMSAvg = ms(csrPatch) / n
		er.ProfilesMSAvg = ms(profiles) / n
		er.IndexesMSAvg = ms(indexes) / n
	}
	er.BuildP50MS = ms(percentile(builds, 0.50))
	er.BuildP99MS = ms(percentile(builds, 0.99))
	er.BuildMaxMS = ms(percentile(builds, 1))
	er.SwapP50MS = ms(percentile(swaps, 0.50))
	er.SwapP99MS = ms(percentile(swaps, 0.99))
	er.SwapMaxMS = ms(percentile(swaps, 1))
	return er
}

// percentile returns the q-th quantile of the latencies (q in (0,1];
// q=1 is the max). The slice is sorted in place.
func percentile(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	idx := int(q*float64(len(ds))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(ds) {
		idx = len(ds) - 1
	}
	return ds[idx]
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "platformbench: %v\n", err)
	os.Exit(1)
}
