// Command platformbench measures the platform's aggregate read throughput
// at several GOMAXPROCS settings and writes the result as JSON, the CI
// artefact that tracks how the two-plane refactor scales. Each setting
// runs the same mixed Profile / FriendPage / SchoolSearch workload as the
// root BenchmarkPlatformConcurrent, spread over per-worker accounts.
//
// Usage:
//
//	platformbench -out BENCH_platform.json
//	platformbench -procs 1,4,8 -scenario tiny
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hsprofiler/internal/osn"
	"hsprofiler/internal/sim"
	"hsprofiler/internal/worldgen"
)

// Result is one GOMAXPROCS point of the sweep.
type Result struct {
	Procs       int     `json:"procs"`
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is the full BENCH_platform.json document.
type Report struct {
	Scenario   string    `json:"scenario"`
	Seed       uint64    `json:"seed"`
	Workers    int       `json:"workers"`
	NumCPU     int       `json:"num_cpu"`
	GoVersion  string    `json:"go_version"`
	Results    []Result  `json:"results"`
	SpeedupMax float64   `json:"speedup_max_vs_1"`
	FrozenIn   string    `json:"freeze_duration"`
	Timestamp  time.Time `json:"timestamp"`
}

func main() {
	out := flag.String("out", "BENCH_platform.json", "output JSON path (- for stdout)")
	scenario := flag.String("scenario", "tiny", "world scenario: tiny, hs1, hs2, hs3")
	seed := flag.Uint64("seed", 11, "world seed")
	procsFlag := flag.String("procs", "1,4,8", "comma-separated GOMAXPROCS settings to sweep")
	workers := flag.Int("workers", 64, "accounts hammering the platform")
	flag.Parse()

	var cfg worldgen.Config
	switch *scenario {
	case "tiny":
		cfg = worldgen.TinyConfig()
	case "hs1":
		cfg = worldgen.HS1Config()
	case "hs2":
		cfg = worldgen.HS2Config()
	case "hs3":
		cfg = worldgen.HS3Config()
	default:
		fatal(fmt.Errorf("unknown scenario %q", *scenario))
	}
	var procs []int
	for _, s := range strings.Split(*procsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fatal(fmt.Errorf("bad -procs entry %q", s))
		}
		procs = append(procs, n)
	}

	w, err := worldgen.Generate(cfg, *seed)
	if err != nil {
		fatal(err)
	}
	p := osn.NewPlatform(w, osn.Facebook(), osn.Config{})
	toks := make([]string, *workers)
	for i := range toks {
		tok, err := p.RegisterAccount(fmt.Sprintf("bench%d", i), sim.Date{Year: 1980, Month: 1, Day: 1})
		if err != nil {
			fatal(err)
		}
		toks[i] = tok
	}
	first, _, err := p.SchoolSearch(toks[0], 0, 0)
	if err != nil {
		fatal(err)
	}
	var targets []osn.PublicID
	for _, sr := range first {
		pp, err := p.Profile(toks[0], sr.ID)
		if err != nil {
			fatal(err)
		}
		if pp.FriendListVisible {
			targets = append(targets, sr.ID)
		}
	}
	if len(targets) == 0 {
		fatal(fmt.Errorf("no visible friend lists in %s world", *scenario))
	}

	rep := Report{
		Scenario:  *scenario,
		Seed:      *seed,
		Workers:   *workers,
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
		FrozenIn:  p.FreezeDuration().String(),
		Timestamp: time.Now().UTC(),
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, n := range procs {
		runtime.GOMAXPROCS(n)
		br := testing.Benchmark(func(b *testing.B) {
			var next atomic.Int64
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				tok := toks[int(next.Add(1)-1)%len(toks)]
				i := 0
				for pb.Next() {
					id := targets[i%len(targets)]
					switch i % 3 {
					case 0:
						p.Profile(tok, id)
					case 1:
						p.FriendPage(tok, id, 0)
					default:
						p.SchoolSearch(tok, 0, i%4)
					}
					i++
				}
			})
		})
		nsPerOp := float64(br.T.Nanoseconds()) / float64(br.N)
		rep.Results = append(rep.Results, Result{
			Procs:       n,
			NsPerOp:     nsPerOp,
			OpsPerSec:   1e9 / nsPerOp,
			BytesPerOp:  br.AllocedBytesPerOp(),
			AllocsPerOp: br.AllocsPerOp(),
		})
		fmt.Fprintf(os.Stderr, "platformbench: GOMAXPROCS=%d  %.0f ns/op  %.0f ops/sec  %d B/op\n",
			n, nsPerOp, 1e9/nsPerOp, br.AllocedBytesPerOp())
	}
	if len(rep.Results) > 1 && rep.Results[0].Procs == 1 {
		base := rep.Results[0].OpsPerSec
		for _, r := range rep.Results[1:] {
			if s := r.OpsPerSec / base; s > rep.SpeedupMax {
				rep.SpeedupMax = s
			}
		}
	}

	f := os.Stdout
	if *out != "-" {
		var err error
		f, err = os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "platformbench: wrote %s\n", *out)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "platformbench: %v\n", err)
	os.Exit(1)
}
