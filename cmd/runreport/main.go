// Command runreport merges a run's observability artifacts — the JSON
// manifest (params, phase timings, counters, metrics snapshot) and the JSONL
// event log — into one human-readable report: what ran, how long each
// methodology phase took, latency quantiles, the fault/retry story, the
// slowest requests with their event chains, and the paper-table summary.
//
// Usage:
//
//	hsprofile ... -manifest-out run.json -events-out events.jsonl
//	runreport -manifest run.json -events events.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	manifestPath := flag.String("manifest", "", "run manifest JSON written by -manifest-out (required)")
	eventsPath := flag.String("events", "", "event log JSONL written by -events-out (optional)")
	topK := flag.Int("top", 10, "how many slowest requests to list")
	flag.Parse()

	if *manifestPath == "" {
		fmt.Fprintln(os.Stderr, "runreport: -manifest is required")
		os.Exit(2)
	}
	m, err := readManifest(*manifestPath)
	if err != nil {
		fatal(err)
	}
	var events []event
	if *eventsPath != "" {
		events, err = readEvents(*eventsPath)
		if err != nil {
			fatal(err)
		}
	}
	if err := report(os.Stdout, m, events, *topK); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "runreport: %v\n", err)
	os.Exit(1)
}
