// Command runreport merges a run's observability artifacts — the JSON
// manifest (params, phase timings, counters, metrics snapshot) and the JSONL
// event log — into one human-readable report: what ran, how long each
// methodology phase took, latency quantiles, the fault/retry story, the
// slowest requests with their event chains, and the paper-table summary.
//
// With -server-events it also merges the daemon's event log and joins the
// two sides by request id (the wire-correlation section) and renders the
// defender's telemetry view of each account.
//
// Usage:
//
//	hsprofile ... -manifest-out run.json -events-out events.jsonl
//	osnd ... -events-out server.jsonl
//	runreport -manifest run.json -events events.jsonl -server-events server.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	manifestPath := flag.String("manifest", "", "run manifest JSON written by -manifest-out (required)")
	eventsPath := flag.String("events", "", "client event log JSONL written by -events-out (optional)")
	serverEventsPath := flag.String("server-events", "", "server event log JSONL written by osnd -events-out (optional)")
	topK := flag.Int("top", 10, "how many slowest requests to list")
	flag.Parse()

	if *manifestPath == "" {
		fmt.Fprintln(os.Stderr, "runreport: -manifest is required")
		os.Exit(2)
	}
	if err := run(os.Stdout, *manifestPath, *eventsPath, *serverEventsPath, *topK); err != nil {
		fmt.Fprintf(os.Stderr, "runreport: %v\n", err)
		os.Exit(1)
	}
}

// run assembles the report. A missing or empty events file downgrades that
// side of the report with a one-line note rather than failing: the manifest
// alone still tells the run's story, and partial artifacts (a crashed run, a
// not-yet-copied server log) should not block a post-mortem.
func run(w io.Writer, manifestPath, eventsPath, serverEventsPath string, topK int) error {
	m, err := readManifest(manifestPath)
	if err != nil {
		return err
	}
	events, err := loadEvents(w, eventsPath, "events")
	if err != nil {
		return err
	}
	serverEvents, err := loadEvents(w, serverEventsPath, "server events")
	if err != nil {
		return err
	}
	return report(w, m, append(events, serverEvents...), topK)
}

// loadEvents reads one JSONL event file, degrading to a note (and an empty
// slice) when the file is absent or holds no events. Malformed JSON is still
// a hard error from readEvents — silently skipping a corrupt log would lie.
func loadEvents(w io.Writer, path, label string) ([]event, error) {
	if path == "" {
		return nil, nil
	}
	events, err := readEvents(path)
	if os.IsNotExist(err) {
		fmt.Fprintf(w, "note: %s file %s not found; reporting from manifest only\n", label, path)
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if len(events) == 0 {
		fmt.Fprintf(w, "note: %s file %s holds no events; reporting from manifest only\n", label, path)
	}
	return events, nil
}
