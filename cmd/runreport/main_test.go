package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hsprofiler/internal/obs"
)

func writeManifest(t *testing.T, dir string) string {
	t.Helper()
	m := obs.NewManifest("hsprofile")
	m.SetParam("school", "Test High")
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "run.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunMissingEventsFile: a run that crashed before flushing (or a log not
// yet copied over) must still produce the manifest-only report, with a note,
// not an error.
func TestRunMissingEventsFile(t *testing.T) {
	dir := t.TempDir()
	manifest := writeManifest(t, dir)
	var buf bytes.Buffer
	err := run(&buf, manifest, filepath.Join(dir, "nope.jsonl"), "", 10)
	if err != nil {
		t.Fatalf("missing events file became an error: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "note: events file") || !strings.Contains(out, "manifest only") {
		t.Errorf("missing-file note absent:\n%s", out)
	}
	if !strings.Contains(out, "run report: hsprofile") {
		t.Errorf("manifest-only report not rendered:\n%s", out)
	}
}

func TestRunEmptyEventsFile(t *testing.T) {
	dir := t.TempDir()
	manifest := writeManifest(t, dir)
	empty := filepath.Join(dir, "events.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(&buf, manifest, empty, "", 10); err != nil {
		t.Fatalf("empty events file became an error: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "holds no events") {
		t.Errorf("empty-file note absent:\n%s", out)
	}
	if !strings.Contains(out, "run report: hsprofile") {
		t.Errorf("manifest-only report not rendered:\n%s", out)
	}
}

// TestRunMergesServerEvents: -server-events merges the daemon's log so the
// wire section can join the two sides.
func TestRunMergesServerEvents(t *testing.T) {
	dir := t.TempDir()
	manifest := writeManifest(t, dir)
	client := filepath.Join(dir, "client.jsonl")
	server := filepath.Join(dir, "server.jsonl")
	clientLog := `{"t":"2026-01-01T00:00:00Z","lvl":"info","cat":"wire","msg":"request","id":"aa11","path":"/api/v1/profile?id=u1","code":200,"ms":4.0}` + "\n"
	serverLog := `{"t":"2026-01-01T00:00:00Z","lvl":"info","cat":"http","msg":"request","req_id":"aa11","path":"/api/v1/profile?id=u1","code":200,"ms":3.0}` + "\n"
	if err := os.WriteFile(client, []byte(clientLog), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(server, []byte(serverLog), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(&buf, manifest, client, server, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "joined: 1/1 (100.0%)") {
		t.Errorf("server events not merged into the wire join:\n%s", out)
	}
}

// TestRunMalformedEventsStillFails: corruption must stay loud — only
// absent/empty logs degrade.
func TestRunMalformedEventsStillFails(t *testing.T) {
	dir := t.TempDir()
	manifest := writeManifest(t, dir)
	bad := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(bad, []byte(`{"lvl":`), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(&buf, manifest, bad, "", 10); err == nil {
		t.Fatal("malformed events file silently skipped")
	}
}
