package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"hsprofiler/internal/obs"
)

const sampleLog = `{"t":"2026-01-01T00:00:00Z","lvl":"info","cat":"method","msg":"seeds collected","trace":"hsprofile","span":3,"seeds":41}

{"t":"2026-01-01T00:00:01Z","lvl":"info","cat":"crawl","msg":"fetched","trace":"hsprofile","span":9,"key":"friends/u1/0","ms":7.5}
{"t":"2026-01-01T00:00:01Z","lvl":"warn","cat":"crawl","msg":"retry","trace":"hsprofile","span":9,"class":"throttle","attempt":1}
{"t":"2026-01-01T00:00:02Z","lvl":"info","cat":"crawl","msg":"fetched","trace":"hsprofile","span":10,"key":"friends/u2/0","ms":1.5}
{"t":"2026-01-01T00:00:02Z","lvl":"warn","cat":"faults","msg":"fault injected","kind":"reset","key":"friends/u2/0"}
`

func TestParseEvents(t *testing.T) {
	events, err := parseEvents(strings.NewReader(sampleLog))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 5 { // blank line skipped
		t.Fatalf("got %d events, want 5", len(events))
	}
	e := events[0]
	if e.Level != "info" || e.Cat != "method" || e.Msg != "seeds collected" || e.Span != 3 {
		t.Fatalf("envelope not lifted: %+v", e)
	}
	if _, ok := e.Fields["cat"]; ok {
		t.Fatal("envelope keys should be deleted from Fields")
	}
	if v, ok := e.f("seeds"); !ok || v != 41 {
		t.Fatalf("field accessor broken: %v %v", v, ok)
	}
	if events[1].Line != 3 {
		t.Fatalf("line numbers must count blank lines: %d", events[1].Line)
	}
}

func TestParseEventsRejectsTornLine(t *testing.T) {
	_, err := parseEvents(strings.NewReader("{\"lvl\":\"info\"}\n{\"lvl\":"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("torn line not named: %v", err)
	}
}

func TestReportSections(t *testing.T) {
	events, err := parseEvents(strings.NewReader(sampleLog))
	if err != nil {
		t.Fatal(err)
	}
	m := obs.NewManifest("hsprofile")
	m.SetParam("school", "Test High")
	m.SetParam("result_selected", 73)
	m.SetParam("result_seeds", 41)
	m.Counters = map[string]float64{
		`crawl_requests_total{category="seed"}`:       6,
		`crawl_requests_total{category="profile"}`:    274,
		`crawl_requests_total{category="friendlist"}`: 122,
		`crawl_retries_total{class="throttle"}`:       1,
	}
	m.Phases = []obs.Phase{{Name: "collect-seeds", DurationMS: 1.8, SpanID: 3}}
	m.FinishedAt = m.StartedAt.Add(time.Second)

	var buf bytes.Buffer
	if err := report(&buf, m, events, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"collect-seeds",                 // phase tree
		"span 3",                        // span id surfaced
		"slowest requests (top 1 of 2)", // only events with ms count
		"friends/u1/0",                  // slowest first
		"crawl/retry (throttle)",        // span-joined chain under it
		"faults injected: reset 1",      // fault accounting
		"inferred students |H| (Table 2/4): 73",
		"effort (Table 3): 6 seed + 274 profile + 122 friend-list = 402 requests",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "friends/u2/0\n") && strings.Index(out, "friends/u2/0") < strings.Index(out, "friends/u1/0") {
		t.Error("slowest requests not sorted by latency")
	}
	if strings.Contains(out, "epochs:") {
		t.Error("static run grew an epochs section")
	}
}

const temporalLog = `{"t":"2026-01-01T00:00:00Z","lvl":"info","cat":"http","msg":"served","path":"/api/v1/profile","ms":0.8,"epoch":0}
{"t":"2026-01-01T00:00:01Z","lvl":"info","cat":"osn.epoch","msg":"epoch advanced","epoch":1,"year":2013,"build":1.25,"users":900,"edges":4200}
{"t":"2026-01-01T00:00:01Z","lvl":"info","cat":"osn.epoch","msg":"epoch retired","epoch":0}
{"t":"2026-01-01T00:00:02Z","lvl":"info","cat":"http","msg":"served","path":"/api/v1/search","ms":0.5,"epoch":1}
{"t":"2026-01-01T00:00:02Z","lvl":"info","cat":"http","msg":"served","path":"/api/v1/friends","ms":0.6,"epoch":1}
`

func TestReportEpochSection(t *testing.T) {
	events, err := parseEvents(strings.NewReader(temporalLog))
	if err != nil {
		t.Fatal(err)
	}
	m := obs.NewManifest("osnd")
	m.Counters = map[string]float64{"osn_epoch_advances_total": 1}

	var buf bytes.Buffer
	if err := report(&buf, m, events, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"epochs:",
		"advances: 1 (1 retired after drain)",
		"epoch 1: year 2013, 900 users / 4200 edges, built in 1.2 ms",
		"epoch 0: 1 events (http 1)",
		"epoch 1: 2 events (http 2)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
