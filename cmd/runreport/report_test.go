package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"hsprofiler/internal/obs"
)

const sampleLog = `{"t":"2026-01-01T00:00:00Z","lvl":"info","cat":"method","msg":"seeds collected","trace":"hsprofile","span":3,"seeds":41}

{"t":"2026-01-01T00:00:01Z","lvl":"info","cat":"crawl","msg":"fetched","trace":"hsprofile","span":9,"key":"friends/u1/0","ms":7.5}
{"t":"2026-01-01T00:00:01Z","lvl":"warn","cat":"crawl","msg":"retry","trace":"hsprofile","span":9,"class":"throttle","attempt":1}
{"t":"2026-01-01T00:00:02Z","lvl":"info","cat":"crawl","msg":"fetched","trace":"hsprofile","span":10,"key":"friends/u2/0","ms":1.5}
{"t":"2026-01-01T00:00:02Z","lvl":"warn","cat":"faults","msg":"fault injected","kind":"reset","key":"friends/u2/0"}
`

func TestParseEvents(t *testing.T) {
	events, err := parseEvents(strings.NewReader(sampleLog))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 5 { // blank line skipped
		t.Fatalf("got %d events, want 5", len(events))
	}
	e := events[0]
	if e.Level != "info" || e.Cat != "method" || e.Msg != "seeds collected" || e.Span != 3 {
		t.Fatalf("envelope not lifted: %+v", e)
	}
	if _, ok := e.Fields["cat"]; ok {
		t.Fatal("envelope keys should be deleted from Fields")
	}
	if v, ok := e.f("seeds"); !ok || v != 41 {
		t.Fatalf("field accessor broken: %v %v", v, ok)
	}
	if events[1].Line != 3 {
		t.Fatalf("line numbers must count blank lines: %d", events[1].Line)
	}
}

func TestParseEventsRejectsTornLine(t *testing.T) {
	_, err := parseEvents(strings.NewReader("{\"lvl\":\"info\"}\n{\"lvl\":"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("torn line not named: %v", err)
	}
}

func TestReportSections(t *testing.T) {
	events, err := parseEvents(strings.NewReader(sampleLog))
	if err != nil {
		t.Fatal(err)
	}
	m := obs.NewManifest("hsprofile")
	m.SetParam("school", "Test High")
	m.SetParam("result_selected", 73)
	m.SetParam("result_seeds", 41)
	m.Counters = map[string]float64{
		`crawl_requests_total{category="seed"}`:       6,
		`crawl_requests_total{category="profile"}`:    274,
		`crawl_requests_total{category="friendlist"}`: 122,
		`crawl_retries_total{class="throttle"}`:       1,
	}
	m.Phases = []obs.Phase{{Name: "collect-seeds", DurationMS: 1.8, SpanID: 3}}
	m.FinishedAt = m.StartedAt.Add(time.Second)

	var buf bytes.Buffer
	if err := report(&buf, m, events, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"collect-seeds",                 // phase tree
		"span 3",                        // span id surfaced
		"slowest requests (top 1 of 2)", // only events with ms count
		"friends/u1/0",                  // slowest first
		"crawl/retry (throttle)",        // span-joined chain under it
		"faults injected: reset 1",      // fault accounting
		"inferred students |H| (Table 2/4): 73",
		"effort (Table 3): 6 seed + 274 profile + 122 friend-list = 402 requests",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "friends/u2/0\n") && strings.Index(out, "friends/u2/0") < strings.Index(out, "friends/u1/0") {
		t.Error("slowest requests not sorted by latency")
	}
	if strings.Contains(out, "epochs:") {
		t.Error("static run grew an epochs section")
	}
}

const temporalLog = `{"t":"2026-01-01T00:00:00Z","lvl":"info","cat":"http","msg":"served","path":"/api/v1/profile","ms":0.8,"epoch":0}
{"t":"2026-01-01T00:00:01Z","lvl":"info","cat":"osn.epoch","msg":"epoch advanced","epoch":1,"year":2013,"build":1.25,"users":900,"edges":4200}
{"t":"2026-01-01T00:00:01Z","lvl":"info","cat":"osn.epoch","msg":"epoch retired","epoch":0}
{"t":"2026-01-01T00:00:02Z","lvl":"info","cat":"http","msg":"served","path":"/api/v1/search","ms":0.5,"epoch":1}
{"t":"2026-01-01T00:00:02Z","lvl":"info","cat":"http","msg":"served","path":"/api/v1/friends","ms":0.6,"epoch":1}
{"t":"2026-01-01T00:00:03Z","lvl":"info","cat":"osn.epoch","msg":"epoch advanced","epoch":2,"year":2014,"build":0.31,"swap":0.02,"users":905,"edges":4300,"incremental":true,"dirty_profiles":84,"dirty_rows":150,"profiles":0.08,"indexes":0.05}
{"t":"2026-01-01T00:00:03Z","lvl":"info","cat":"osn.epoch","msg":"epoch retired","epoch":1}
`

func TestReportEpochSection(t *testing.T) {
	events, err := parseEvents(strings.NewReader(temporalLog))
	if err != nil {
		t.Fatal(err)
	}
	m := obs.NewManifest("osnd")
	m.Counters = map[string]float64{"osn_epoch_advances_total": 2}

	var buf bytes.Buffer
	if err := report(&buf, m, events, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"epochs:",
		"advances: 2 (2 retired after drain)",
		// Legacy advance event (no swap/incremental fields): base line only.
		"epoch 1: year 2013, 900 users / 4200 edges, built in 1.2 ms\n",
		// Incremental advance: split swap plus the dirty-set breakdown.
		"epoch 2: year 2014, 905 users / 4300 edges, built in 0.3 ms, swapped in 0.02 ms",
		"incremental: 84 dirty profiles, 150 dirty CSR rows (profiles 0.1 ms, indexes 0.1 ms)",
		"epoch 0: 1 events (http 1)",
		"epoch 1: 2 events (http 2)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// wireLog is a two-sided log: client "wire" events and server "http" access
// events sharing request ids, plus one client request the server never
// logged (dropped before the handler).
const wireLog = `{"t":"2026-01-01T00:00:00Z","lvl":"info","cat":"wire","msg":"request","trace":"hsprofile","id":"aa11","path":"/api/v1/profile?id=u1","code":200,"ms":4.0}
{"t":"2026-01-01T00:00:00Z","lvl":"info","cat":"wire","msg":"request","trace":"hsprofile","id":"bb22","path":"/api/v1/search?scope=school","code":200,"ms":9.0}
{"t":"2026-01-01T00:00:01Z","lvl":"info","cat":"wire","msg":"request","trace":"hsprofile","id":"cc33","path":"/api/v1/friends?id=u1","code":0,"ms":1.0}
{"t":"2026-01-01T00:00:00Z","lvl":"info","cat":"http","msg":"request","trace":"osnd","endpoint":"profile","path":"/api/v1/profile?id=u1","req_id":"aa11","code":200,"ms":3.0}
{"t":"2026-01-01T00:00:00Z","lvl":"info","cat":"http","msg":"request","trace":"osnd","endpoint":"search","path":"/api/v1/search?scope=school","req_id":"bb22","code":200,"ms":7.5}
{"t":"2026-01-01T00:00:02Z","lvl":"info","cat":"http","msg":"request","trace":"osnd","endpoint":"healthz","path":"/healthz","req_id":"","code":200,"ms":0.1}
`

func TestWireSection(t *testing.T) {
	events, err := parseEvents(strings.NewReader(wireLog))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	wire(&buf, events, 10)
	out := buf.String()
	for _, want := range []string{
		"wire correlation",
		"client requests: 3 (3 distinct ids)   server access events: 3",
		"joined: 2/3 (66.7%)",
		"client-minus-server overhead",
		"/api/v1/search?scope=school", // slowest joined request listed
	} {
		if !strings.Contains(out, want) {
			t.Errorf("wire section missing %q:\n%s", want, out)
		}
	}
	// Slowest-first: the 9ms search outranks the 4ms profile.
	if strings.Index(out, "search?scope") > strings.Index(out, "profile?id") {
		t.Errorf("slowest joined request not first:\n%s", out)
	}
	// Unstamped server events (empty req_id) must not be joined.
	if strings.Contains(out, "/healthz") {
		t.Errorf("unstamped /healthz event leaked into the join:\n%s", out)
	}
}

func TestWireSectionAbsentWithoutWireEvents(t *testing.T) {
	events, err := parseEvents(strings.NewReader(sampleLog))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	wire(&buf, events, 10)
	if buf.Len() != 0 {
		t.Fatalf("wire section rendered with no wire events:\n%s", buf.String())
	}
}

const telemetryLog = `{"t":"2026-01-01T00:00:10Z","lvl":"info","cat":"osn.telemetry","msg":"account features","token":"acct-1-loadgen0","requests":40,"fanout":0,"profiles":30,"friend_pages":10,"distinct":12,"coverage":1.2,"harvest":0.4,"ia_cv":0.3,"overlap":0,"score":3.7}
{"t":"2026-01-01T00:00:10Z","lvl":"info","cat":"osn.telemetry","msg":"account features","token":"acct-2-crawler0","requests":300,"fanout":45,"profiles":200,"friend_pages":55,"distinct":198,"coverage":3.4,"harvest":0.99,"ia_cv":0.1,"overlap":0,"score":19.2}
{"t":"2026-01-01T00:00:20Z","lvl":"info","cat":"osn.telemetry","msg":"account features","token":"acct-2-crawler0","requests":340,"fanout":50,"profiles":220,"friend_pages":65,"distinct":210,"coverage":3.5,"harvest":0.99,"ia_cv":0.1,"overlap":0,"score":20.1}
{"t":"2026-01-01T00:00:20Z","lvl":"warn","cat":"osn.telemetry","msg":"crawler-likeness threshold crossed","token":"acct-2-crawler0","feature":"fanout","score":20.1}
`

func TestDefenderSection(t *testing.T) {
	events, err := parseEvents(strings.NewReader(telemetryLog))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	defender(&buf, events)
	out := buf.String()
	for _, want := range []string{
		"defender view",
		"1 flagged",
		"acct-2-crawler0",
		"acct-1-loadgen0",
		"20.10", // latest rollup wins, not the first
		"fanout",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("defender section missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, "crawler0") > strings.Index(out, "loadgen0") {
		t.Errorf("accounts not ranked by score:\n%s", out)
	}
	if strings.Count(out, "acct-2-crawler0") != 1 {
		t.Errorf("stale rollup rows not collapsed:\n%s", out)
	}
}

func TestDefenderSectionAbsentWithoutTelemetry(t *testing.T) {
	events, err := parseEvents(strings.NewReader(sampleLog))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	defender(&buf, events)
	if buf.Len() != 0 {
		t.Fatalf("defender section rendered with no telemetry events:\n%s", buf.String())
	}
}
