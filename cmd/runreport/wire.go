package main

import (
	"fmt"
	"io"
	"sort"
)

// The wire-correlation and defender-view sections. Both sides of a run
// write events: the attacker's client stamps every request with a
// deterministic X-Osn-Request-Id and logs a "wire" event; the server
// echoes the id into its "http" access event. Feed runreport both logs
// (-events for the client's, -server-events for the server's) and these
// sections join them into one cross-process timeline.

// wire joins client "wire" events to server "http" access events by
// request id: the join rate, the client-minus-server overhead
// distribution (wire wait: dial, queueing, kernel, read), and the top-K
// slowest joined requests with both sides' timings.
func wire(w io.Writer, events []event, topK int) {
	type side struct {
		ms   float64
		path string
		code int
	}
	client := map[string]side{}
	server := map[string]side{}
	clientEvents, serverEvents := 0, 0
	for _, e := range events {
		switch {
		case e.Cat == "wire" && e.Msg == "request":
			clientEvents++
			id := e.s("id")
			if _, dup := client[id]; id == "" || dup {
				continue // retried attempt: same id, keep the first timing
			}
			ms, _ := e.f("ms")
			code, _ := e.f("code")
			client[id] = side{ms: ms, path: e.s("path"), code: int(code)}
		case e.Cat == "http" && e.Msg == "request":
			serverEvents++
			id := e.s("req_id")
			if _, dup := server[id]; id == "" || dup {
				continue
			}
			ms, _ := e.f("ms")
			server[id] = side{ms: ms, path: e.s("path")}
		}
	}
	if len(client) == 0 {
		return
	}
	type joinedReq struct {
		id                 string
		clientMS, serverMS float64
		path               string
	}
	var joined []joinedReq
	var overheads []float64
	for id, c := range client {
		s, ok := server[id]
		if !ok {
			continue
		}
		joined = append(joined, joinedReq{id: id, clientMS: c.ms, serverMS: s.ms, path: c.path})
		overheads = append(overheads, c.ms-s.ms)
	}
	fmt.Fprintln(w, "\nwire correlation (client ↔ server by request id):")
	fmt.Fprintf(w, "  client requests: %d (%d distinct ids)   server access events: %d\n",
		clientEvents, len(client), serverEvents)
	rate := 100 * float64(len(joined)) / float64(len(client))
	fmt.Fprintf(w, "  joined: %d/%d (%.1f%%)\n", len(joined), len(client), rate)
	if len(joined) == 0 {
		return
	}
	sort.Float64s(overheads)
	fmt.Fprintf(w, "  client-minus-server overhead: p50 %.2f ms, p95 %.2f ms, max %.2f ms\n",
		pick(overheads, 0.50), pick(overheads, 0.95), overheads[len(overheads)-1])
	sort.Slice(joined, func(i, j int) bool {
		if joined[i].clientMS != joined[j].clientMS {
			return joined[i].clientMS > joined[j].clientMS
		}
		return joined[i].id < joined[j].id
	})
	if topK > len(joined) {
		topK = len(joined)
	}
	if topK <= 0 {
		return
	}
	fmt.Fprintf(w, "  slowest joined requests (top %d):\n", topK)
	fmt.Fprintf(w, "    %10s %10s %10s  %s\n", "client ms", "server ms", "overhead", "path")
	for _, j := range joined[:topK] {
		fmt.Fprintf(w, "    %10.2f %10.2f %10.2f  %s\n", j.clientMS, j.serverMS, j.clientMS-j.serverMS, j.path)
	}
}

// pick returns the q-quantile of a sorted slice (nearest-rank).
func pick(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// defender renders the platform's view of its third-party accounts: the
// latest telemetry rollup per account (from the aggregator's
// "osn.telemetry" events), ranked by crawler-likeness score, with
// threshold-crossing anomalies called out. Runs without telemetry emit no
// such events and the section disappears.
func defender(w io.Writer, events []event) {
	latest := map[string]event{}
	var order []string
	anomalies := map[string]string{}
	for _, e := range events {
		if e.Cat != "osn.telemetry" {
			continue
		}
		switch e.Msg {
		case "account features":
			tok := e.s("token")
			if _, seen := latest[tok]; !seen {
				order = append(order, tok)
			}
			latest[tok] = e
		case "crawler-likeness threshold crossed":
			anomalies[e.s("token")] = e.s("feature")
		}
	}
	if len(latest) == 0 {
		return
	}
	sort.SliceStable(order, func(i, j int) bool {
		si, _ := latest[order[i]].f("score")
		sj, _ := latest[order[j]].f("score")
		if si != sj {
			return si > sj
		}
		return order[i] < order[j]
	})
	fmt.Fprintf(w, "\ndefender view (accounts by crawler-likeness, %d flagged):\n", len(anomalies))
	fmt.Fprintf(w, "  %-24s %6s %7s %9s %9s %8s %7s %7s\n",
		"account", "reqs", "fanout", "distinct", "coverage", "harvest", "ia_cv", "score")
	for _, tok := range order {
		e := latest[tok]
		reqs, _ := e.f("requests")
		fanout, _ := e.f("fanout")
		distinct, _ := e.f("distinct")
		coverage, _ := e.f("coverage")
		harvest, _ := e.f("harvest")
		cv, _ := e.f("ia_cv")
		score, _ := e.f("score")
		flag := ""
		if feat, ok := anomalies[tok]; ok {
			flag = "  ⚠ " + feat
		}
		fmt.Fprintf(w, "  %-24s %6.0f %7.0f %9.1f %9.2f %8.2f %7.2f %7.2f%s\n",
			tok, reqs, fanout, distinct, coverage, harvest, cv, score, flag)
	}
}
