package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"hsprofiler/internal/obs"
)

// event is one parsed line of the JSONL event log. The envelope fields are
// lifted out; everything else stays in Fields.
type event struct {
	Line   int
	Time   string
	Level  string
	Cat    string
	Msg    string
	Trace  string
	Span   int
	Fields map[string]any
}

// f returns a float field (JSON numbers decode as float64), with ok=false
// when absent or non-numeric.
func (e event) f(key string) (float64, bool) {
	v, ok := e.Fields[key].(float64)
	return v, ok
}

// s returns a string field ("" when absent).
func (e event) s(key string) string {
	v, _ := e.Fields[key].(string)
	return v
}

func readManifest(path string) (*obs.Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m obs.Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("parsing manifest %s: %w", path, err)
	}
	return &m, nil
}

func readEvents(path string) ([]event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parseEvents(f)
}

func parseEvents(r io.Reader) ([]event, error) {
	var out []event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var raw map[string]any
		if err := json.Unmarshal([]byte(line), &raw); err != nil {
			return nil, fmt.Errorf("event log line %d is not valid JSON: %w", lineNo, err)
		}
		e := event{Line: lineNo, Fields: raw}
		e.Time, _ = raw["t"].(string)
		e.Level, _ = raw["lvl"].(string)
		e.Cat, _ = raw["cat"].(string)
		e.Msg, _ = raw["msg"].(string)
		e.Trace, _ = raw["trace"].(string)
		if v, ok := raw["span"].(float64); ok {
			e.Span = int(v)
		}
		for _, k := range []string{"t", "lvl", "cat", "msg", "trace", "span"} {
			delete(raw, k)
		}
		out = append(out, e)
	}
	return out, sc.Err()
}

// report renders the merged run report.
func report(w io.Writer, m *obs.Manifest, events []event, topK int) error {
	header(w, m)
	params(w, m)
	phases(w, m)
	quantiles(w, m)
	accounting(w, m, events)
	epochs(w, m, events)
	slowest(w, events, topK)
	wire(w, events, topK)
	defender(w, events)
	tables(w, m)
	return nil
}

func header(w io.Writer, m *obs.Manifest) {
	fmt.Fprintf(w, "run report: %s", m.Tool)
	if m.Scenario != "" {
		fmt.Fprintf(w, " — %s", m.Scenario)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  build:    %s\n", m.GitDescribe)
	fmt.Fprintf(w, "  started:  %s\n", m.StartedAt.Format("2006-01-02 15:04:05 MST"))
	if !m.FinishedAt.IsZero() {
		fmt.Fprintf(w, "  duration: %s\n", m.FinishedAt.Sub(m.StartedAt).Round(1e6))
	}
	if m.DroppedSpans > 0 {
		fmt.Fprintf(w, "  note: trace dropped %d spans over its cap\n", m.DroppedSpans)
	}
}

func params(w io.Writer, m *obs.Manifest) {
	if len(m.Params) == 0 {
		return
	}
	fmt.Fprintln(w, "\nparameters:")
	keys := make([]string, 0, len(m.Params))
	for k := range m.Params {
		if strings.HasPrefix(k, "result_") {
			continue // results are reported in the tables section
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "  %-16s %v\n", k, m.Params[k])
	}
}

func phases(w io.Writer, m *obs.Manifest) {
	if len(m.Phases) == 0 {
		return
	}
	fmt.Fprintln(w, "\nphases:")
	var walk func(ps []obs.Phase, depth int)
	walk = func(ps []obs.Phase, depth int) {
		for _, p := range ps {
			fmt.Fprintf(w, "  %s%-*s %9.1f ms  (at +%.1f ms", strings.Repeat("  ", depth),
				28-2*depth, p.Name, p.DurationMS, p.StartMS)
			if p.SpanID > 0 {
				fmt.Fprintf(w, ", span %d", p.SpanID)
			}
			fmt.Fprintln(w, ")")
			// Per-request child spans can number in the thousands; summarize
			// below a depth instead of flooding the report.
			if depth >= 1 && len(p.Children) > 5 {
				fmt.Fprintf(w, "  %s… %d child spans\n", strings.Repeat("  ", depth+1), len(p.Children))
				continue
			}
			walk(p.Children, depth+1)
		}
	}
	walk(m.Phases, 0)
}

func quantiles(w io.Writer, m *obs.Manifest) {
	if m.Metrics == nil || len(m.Metrics.Histograms) == 0 {
		return
	}
	fmt.Fprintln(w, "\nlatency quantiles:")
	names := make([]string, 0, len(m.Metrics.Histograms))
	for name := range m.Metrics.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "  %-44s %8s %9s %9s %9s\n", "histogram", "count", "p50", "p95", "p99")
	for _, name := range names {
		h := m.Metrics.Histograms[name]
		if h.Count == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-44s %8d %7.2fms %7.2fms %7.2fms\n", name, h.Count,
			h.Quantile(0.50)*1000, h.Quantile(0.95)*1000, h.Quantile(0.99)*1000)
	}
}

func accounting(w io.Writer, m *obs.Manifest, events []event) {
	if len(events) == 0 {
		return
	}
	byCat := map[string]int{}
	byLevel := map[string]int{}
	faultKinds := map[string]int{}
	retryClasses := map[string]int{}
	for _, e := range events {
		byCat[e.Cat]++
		byLevel[e.Level]++
		if e.Cat == "faults" && e.Msg == "fault injected" {
			faultKinds[e.s("kind")]++
		}
		if e.Cat == "crawl" && e.Msg == "retry" {
			retryClasses[e.s("class")]++
		}
	}
	fmt.Fprintf(w, "\nevents: %d total\n", len(events))
	fmt.Fprintf(w, "  by category: %s\n", countMap(byCat))
	fmt.Fprintf(w, "  by level:    %s\n", countMap(byLevel))
	if len(faultKinds) > 0 {
		fmt.Fprintf(w, "  faults injected: %s\n", countMap(faultKinds))
	}
	if len(retryClasses) > 0 {
		fmt.Fprintf(w, "  retries by class: %s\n", countMap(retryClasses))
	}
	if n := countMap(suspensionTally(events)); n != "" {
		fmt.Fprintf(w, "  account suspensions seen: %s\n", n)
	}
}

// epochs renders the temporal story of a run against an evolving platform:
// the epoch-advance timeline (from the platform's "osn.epoch" events) and
// every epoch-stamped event — the server's access log carries the serving
// epoch id — tallied per epoch, so a longitudinal run reads as a sequence
// of per-epoch workloads instead of one undifferentiated stream. Static
// runs emit neither, and the section disappears.
func epochs(w io.Writer, m *obs.Manifest, events []event) {
	type advance struct {
		epoch, year, users, edges int
		buildMS                   float64
		swapMS                    float64
		hasSwap                   bool
		incremental               bool
		dirtyProfiles, dirtyRows  int
		profMS, idxMS             float64
	}
	var advances []advance
	retired := 0
	perEpoch := map[int]map[string]int{}
	for _, e := range events {
		if e.Cat == "osn.epoch" {
			switch e.Msg {
			case "epoch advanced":
				a := advance{}
				if v, ok := e.f("epoch"); ok {
					a.epoch = int(v)
				}
				if v, ok := e.f("year"); ok {
					a.year = int(v)
				}
				if v, ok := e.f("users"); ok {
					a.users = int(v)
				}
				if v, ok := e.f("edges"); ok {
					a.edges = int(v)
				}
				a.buildMS, _ = e.f("build")
				a.swapMS, a.hasSwap = e.f("swap")
				a.incremental, _ = e.Fields["incremental"].(bool)
				if v, ok := e.f("dirty_profiles"); ok {
					a.dirtyProfiles = int(v)
				}
				if v, ok := e.f("dirty_rows"); ok {
					a.dirtyRows = int(v)
				}
				a.profMS, _ = e.f("profiles")
				a.idxMS, _ = e.f("indexes")
				advances = append(advances, a)
			case "epoch retired":
				retired++
			}
			continue
		}
		if v, ok := e.f("epoch"); ok {
			id := int(v)
			if perEpoch[id] == nil {
				perEpoch[id] = map[string]int{}
			}
			perEpoch[id][e.Cat]++
		}
	}
	if len(advances) == 0 && len(perEpoch) == 0 {
		return
	}
	fmt.Fprintln(w, "\nepochs:")
	if n := prefixSum(m, "osn_epoch_advances_total"); n > 0 || len(advances) > 0 {
		if n == 0 {
			n = float64(len(advances))
		}
		fmt.Fprintf(w, "  advances: %.0f (%d retired after drain)\n", n, retired)
	}
	for _, a := range advances {
		fmt.Fprintf(w, "    epoch %d: year %d, %d users / %d edges, built in %.1f ms",
			a.epoch, a.year, a.users, a.edges, a.buildMS)
		// Logs from before the build/swap split carry no swap field; the
		// base line alone keeps old artefacts readable.
		if a.hasSwap {
			fmt.Fprintf(w, ", swapped in %.2f ms", a.swapMS)
		}
		fmt.Fprintln(w)
		if a.incremental {
			fmt.Fprintf(w, "      incremental: %d dirty profiles, %d dirty CSR rows (profiles %.1f ms, indexes %.1f ms)\n",
				a.dirtyProfiles, a.dirtyRows, a.profMS, a.idxMS)
		}
	}
	if len(perEpoch) == 0 {
		return
	}
	ids := make([]int, 0, len(perEpoch))
	for id := range perEpoch {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	fmt.Fprintln(w, "  events by serving epoch:")
	for _, id := range ids {
		total := 0
		for _, n := range perEpoch[id] {
			total += n
		}
		fmt.Fprintf(w, "    epoch %d: %d events (%s)\n", id, total, countMap(perEpoch[id]))
	}
}

func suspensionTally(events []event) map[string]int {
	out := map[string]int{}
	for _, e := range events {
		if e.Msg == "account suspended" {
			out["platform"]++
		}
		if e.Msg == "account suspended, rotating" {
			out["crawler"]++
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func countMap(m map[string]int) string {
	if len(m) == 0 {
		return ""
	}
	type kv struct {
		k string
		v int
	}
	kvs := make([]kv, 0, len(m))
	for k, v := range m {
		kvs = append(kvs, kv{k, v})
	}
	sort.Slice(kvs, func(i, j int) bool {
		if kvs[i].v != kvs[j].v {
			return kvs[i].v > kvs[j].v
		}
		return kvs[i].k < kvs[j].k
	})
	parts := make([]string, len(kvs))
	for i, e := range kvs {
		parts[i] = fmt.Sprintf("%s %d", e.k, e.v)
	}
	return strings.Join(parts, ", ")
}

// slowest lists the top-K events carrying a latency ("ms") field — the
// fetcher's per-request completions and the server's access log — each with
// the chain of other events sharing its span, the request's full story.
func slowest(w io.Writer, events []event, topK int) {
	type timed struct {
		e  event
		ms float64
	}
	var reqs []timed
	bySpan := map[int][]event{}
	for _, e := range events {
		if e.Span > 0 {
			bySpan[e.Span] = append(bySpan[e.Span], e)
		}
		if ms, ok := e.f("ms"); ok {
			reqs = append(reqs, timed{e, ms})
		}
	}
	if len(reqs) == 0 || topK <= 0 {
		return
	}
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].ms > reqs[j].ms })
	if topK > len(reqs) {
		topK = len(reqs)
	}
	fmt.Fprintf(w, "\nslowest requests (top %d of %d):\n", topK, len(reqs))
	for _, r := range reqs[:topK] {
		label := r.e.s("key")
		if label == "" {
			label = r.e.s("path")
		}
		if label == "" {
			label = r.e.s("endpoint")
		}
		fmt.Fprintf(w, "  %8.2f ms  %-40s", r.ms, label)
		if r.e.Span > 0 {
			fmt.Fprintf(w, " (span %d)", r.e.Span)
		}
		fmt.Fprintln(w)
		if r.e.Span <= 0 {
			continue
		}
		for _, ce := range bySpan[r.e.Span] {
			if ce.Line == r.e.Line {
				continue
			}
			fmt.Fprintf(w, "              └ [%s] %s/%s", ce.Level, ce.Cat, ce.Msg)
			if cls := ce.s("class"); cls != "" {
				fmt.Fprintf(w, " (%s)", cls)
			}
			fmt.Fprintln(w)
		}
	}
}

// tables prints the paper-table summary: the Table 3 effort accounting from
// the crawl counters and the Table 2/4-shaped result parameters the run
// recorded.
func tables(w io.Writer, m *obs.Manifest) {
	seed := counterSum(m, `crawl_requests_total{category="seed"}`)
	profile := counterSum(m, `crawl_requests_total{category="profile"}`)
	friend := counterSum(m, `crawl_requests_total{category="friendlist"}`)
	total := seed + profile + friend
	hasEffort := total > 0
	hasResults := m.Params["result_selected"] != nil
	if !hasEffort && !hasResults {
		return
	}
	fmt.Fprintln(w, "\npaper-table summary:")
	if hasResults {
		fmt.Fprintf(w, "  seeds |S|: %v   core |C|: %v   extended core: %v   candidates: %v\n",
			m.Params["result_seeds"], m.Params["result_core"],
			m.Params["result_extended_core"], m.Params["result_candidates"])
		fmt.Fprintf(w, "  inferred students |H| (Table 2/4): %v\n", m.Params["result_selected"])
		if by, ok := m.Params["result_by_year"].(map[string]any); ok {
			years := make([]string, 0, len(by))
			for y := range by {
				years = append(years, y)
			}
			sort.Strings(years)
			for _, y := range years {
				fmt.Fprintf(w, "    class of %s: %v students\n", y, by[y])
			}
		}
	}
	if hasEffort {
		fmt.Fprintf(w, "  effort (Table 3): %.0f seed + %.0f profile + %.0f friend-list = %.0f requests\n",
			seed, profile, friend, total)
	}
	if retries := prefixSum(m, "crawl_retries_total"); retries > 0 {
		fmt.Fprintf(w, "  resilience: %.0f retries, %.0f hard failures, %.0f faults injected\n",
			retries, prefixSum(m, "crawl_failures_total"), prefixSum(m, "faults_injected_total"))
	}
}

func counterSum(m *obs.Manifest, series string) float64 {
	return m.Counters[series]
}

// prefixSum totals every counter series of one metric name across labels.
func prefixSum(m *obs.Manifest, name string) float64 {
	var total float64
	for k, v := range m.Counters {
		if k == name || strings.HasPrefix(k, name+"{") {
			total += v
		}
	}
	return total
}
