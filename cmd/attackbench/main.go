// Command attackbench measures end-to-end attack-crawl throughput at
// several worker-pool widths and writes the result as JSON, the CI
// artefact that tracks how the parallel pipeline scales. Each point runs
// the complete methodology (seed collection through ranked window
// profiles) against a fresh in-process platform wrapped in a simulated
// per-request RTT — the regime the worker pool exists for, where
// wall-clock is waiting on the network, not the CPU.
//
// Throughput is reported in logical requests per second: the Table 3
// effort count divided by wall-clock. Logical requests are identical at
// every worker count (the sweep refuses to emit a report otherwise), so
// the ops/sec ratio IS the speedup.
//
// Usage:
//
//	attackbench -out BENCH_attack.json
//	attackbench -scenario hs1 -workers 1,4,8 -rtt 200us -mode enhanced
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"hsprofiler/internal/core"
	"hsprofiler/internal/crawler"
	"hsprofiler/internal/experiments"
	"hsprofiler/internal/osn"
	"hsprofiler/internal/worldgen"
)

// Result is one worker-count point of the sweep.
type Result struct {
	Workers     int     `json:"workers"`
	NsPerOp     float64 `json:"ns_per_op"` // per logical request
	OpsPerSec   float64 `json:"ops_per_sec"`
	Requests    int     `json:"requests"` // logical requests (Table 3 effort)
	Elapsed     string  `json:"elapsed"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is the full BENCH_attack.json document. The scenario/seed/results
// shape matches BENCH_platform.json so cmd/benchdiff can gate either.
type Report struct {
	Scenario   string    `json:"scenario"`
	Seed       uint64    `json:"seed"`
	Mode       string    `json:"mode"`
	RTT        string    `json:"rtt"`
	NumCPU     int       `json:"num_cpu"`
	GoVersion  string    `json:"go_version"`
	Results    []Result  `json:"results"`
	SpeedupMax float64   `json:"speedup_max_vs_1"`
	Timestamp  time.Time `json:"timestamp"`
}

func main() {
	out := flag.String("out", "BENCH_attack.json", "output JSON path (- for stdout)")
	scenario := flag.String("scenario", "hs1", "attack scenario: tiny, hs1, hs2, hs3")
	workersFlag := flag.String("workers", "1,4,8", "comma-separated worker-pool widths to sweep")
	rtt := flag.Duration("rtt", 200*time.Microsecond, "simulated per-request round-trip time")
	mode := flag.String("mode", "enhanced", "methodology: basic or enhanced")
	flag.Parse()

	var sc experiments.Scenario
	switch *scenario {
	case "tiny":
		sc = experiments.Tiny()
	case "hs1":
		sc = experiments.HS1()
	case "hs2":
		sc = experiments.HS2()
	case "hs3":
		sc = experiments.HS3()
	default:
		fatal(fmt.Errorf("unknown scenario %q", *scenario))
	}
	var runMode core.Mode
	switch *mode {
	case "basic":
		runMode = core.Basic
	case "enhanced":
		runMode = core.Enhanced
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	var workers []int
	for _, s := range strings.Split(*workersFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fatal(fmt.Errorf("bad -workers entry %q", s))
		}
		workers = append(workers, n)
	}

	world, err := worldgen.Generate(sc.Config, sc.Seed)
	if err != nil {
		fatal(err)
	}
	rep := Report{
		Scenario:  *scenario,
		Seed:      sc.Seed,
		Mode:      *mode,
		RTT:       rtt.String(),
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
		Timestamp: time.Now().UTC(),
	}
	for _, w := range workers {
		// Fresh platform + crawler per point so account-rotation state and
		// suspension history start identical for every width.
		platform := osn.NewPlatform(world, osn.Facebook(), osn.Config{SearchPerAccount: sc.SearchPerAccount})
		d, err := crawler.NewDirect(platform, sc.SeedAccounts)
		if err != nil {
			fatal(err)
		}
		client := crawler.WithLatency(d, *rtt)

		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		res, err := core.Run(crawler.NewSession(client), core.Params{
			SchoolName:   world.Schools[0].Name,
			CurrentYear:  sc.CurrentYear(),
			Mode:         runMode,
			MaxThreshold: sc.MaxThreshold,
			Workers:      w,
		})
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if err != nil {
			fatal(fmt.Errorf("workers=%d: %w", w, err))
		}
		logical := res.Effort.Total()
		if logical == 0 {
			fatal(fmt.Errorf("workers=%d: run made no requests", w))
		}
		rep.Results = append(rep.Results, Result{
			Workers:     w,
			NsPerOp:     float64(elapsed.Nanoseconds()) / float64(logical),
			OpsPerSec:   float64(logical) / elapsed.Seconds(),
			Requests:    logical,
			Elapsed:     elapsed.Round(time.Millisecond).String(),
			BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / int64(logical),
			AllocsPerOp: int64(after.Mallocs-before.Mallocs) / int64(logical),
		})
		fmt.Fprintf(os.Stderr, "attackbench: workers=%d  %d requests in %s  %.0f req/sec\n",
			w, logical, elapsed.Round(time.Millisecond), float64(logical)/elapsed.Seconds())
	}
	// The whole point of counting logical requests is that the number is
	// invariant under parallelism; a divergence means the pipeline is no
	// longer deterministic and the timings are comparing different crawls.
	for _, r := range rep.Results[1:] {
		if r.Requests != rep.Results[0].Requests {
			fatal(fmt.Errorf("logical request count diverged across widths: workers=%d made %d, workers=%d made %d",
				rep.Results[0].Workers, rep.Results[0].Requests, r.Workers, r.Requests))
		}
	}
	if len(rep.Results) > 1 && rep.Results[0].Workers == 1 {
		base := rep.Results[0].OpsPerSec
		for _, r := range rep.Results[1:] {
			if s := r.OpsPerSec / base; s > rep.SpeedupMax {
				rep.SpeedupMax = s
			}
		}
	}

	f := os.Stdout
	if *out != "-" {
		var err error
		f, err = os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "attackbench: wrote %s (max speedup vs workers=1: %.2fx)\n", *out, rep.SpeedupMax)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "attackbench: %v\n", err)
	os.Exit(1)
}
