package main

import (
	"fmt"
	"io"
)

// report mirrors the fields of platformbench's / attackbench's Report that
// the diff needs; unknown fields in the JSON are ignored, so the commands
// can evolve their schemas independently as long as these survive.
type report struct {
	Scenario string   `json:"scenario"`
	Seed     uint64   `json:"seed"`
	Workers  int      `json:"workers"`
	Results  []result `json:"results"`
}

type result struct {
	Procs       int     `json:"procs"`   // platformbench sweeps GOMAXPROCS…
	Workers     int     `json:"workers"` // …attackbench sweeps pool width
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// point is the sweep coordinate results are matched on: GOMAXPROCS for
// platform reports, worker-pool width for attack reports.
func (r result) point() int {
	if r.Procs > 0 {
		return r.Procs
	}
	return r.Workers
}

// row is one sweep point of the diff.
type row struct {
	point     int
	oldOps    float64
	newOps    float64
	delta     float64 // fractional change in ops/sec; negative = slower
	oldAllocs int64
	newAllocs int64
	// verdict flags
	slower    bool // past the throughput threshold
	newAllocd bool // allocation appeared on a previously allocation-free path
	missing   bool // present in old, absent in new
}

// diff is the full comparison.
type diff struct {
	rows     []row
	mismatch string // non-empty when the runs are not comparable
}

// compare matches results by sweep point (GOMAXPROCS or worker count) and
// flags regressions: a throughput drop beyond threshold, or any allocation
// on a path that was allocation-free in the baseline. Extra points in the
// candidate are ignored; points missing from it are themselves a failure
// (the sweep shrank).
func compare(oldRep, newRep *report, threshold float64) *diff {
	d := &diff{}
	if oldRep.Scenario != newRep.Scenario || oldRep.Seed != newRep.Seed || oldRep.Workers != newRep.Workers {
		d.mismatch = fmt.Sprintf("baseline ran scenario=%s seed=%d workers=%d, candidate scenario=%s seed=%d workers=%d — comparing anyway, treat deltas with suspicion",
			oldRep.Scenario, oldRep.Seed, oldRep.Workers, newRep.Scenario, newRep.Seed, newRep.Workers)
	}
	byPoint := map[int]result{}
	for _, r := range newRep.Results {
		byPoint[r.point()] = r
	}
	for _, o := range oldRep.Results {
		n, ok := byPoint[o.point()]
		if !ok {
			d.rows = append(d.rows, row{point: o.point(), oldOps: o.OpsPerSec, oldAllocs: o.AllocsPerOp, missing: true})
			continue
		}
		r := row{
			point:     o.point(),
			oldOps:    o.OpsPerSec,
			newOps:    n.OpsPerSec,
			oldAllocs: o.AllocsPerOp,
			newAllocs: n.AllocsPerOp,
		}
		if o.OpsPerSec > 0 {
			r.delta = (n.OpsPerSec - o.OpsPerSec) / o.OpsPerSec
		}
		r.slower = r.delta < -threshold
		r.newAllocd = o.AllocsPerOp == 0 && n.AllocsPerOp > 0
		d.rows = append(d.rows, r)
	}
	return d
}

func (d *diff) regressed() bool {
	for _, r := range d.rows {
		if r.slower || r.newAllocd || r.missing {
			return true
		}
	}
	return false
}

func (d *diff) print(w io.Writer, oldPath, newPath string, threshold float64) {
	fmt.Fprintf(w, "benchdiff: %s vs %s (threshold %.0f%%)\n", oldPath, newPath, threshold*100)
	if d.mismatch != "" {
		fmt.Fprintf(w, "  warning: %s\n", d.mismatch)
	}
	fmt.Fprintf(w, "  %5s %14s %14s %8s %12s\n", "point", "old ops/s", "new ops/s", "delta", "allocs/op")
	for _, r := range d.rows {
		if r.missing {
			fmt.Fprintf(w, "  %5d %14.0f %14s %8s %12s  REGRESSION: point missing from candidate\n",
				r.point, r.oldOps, "-", "-", "-")
			continue
		}
		mark := ""
		switch {
		case r.slower && r.newAllocd:
			mark = "  REGRESSION: slower and newly allocating"
		case r.slower:
			mark = "  REGRESSION: past threshold"
		case r.newAllocd:
			mark = "  REGRESSION: allocation-free path now allocates"
		}
		fmt.Fprintf(w, "  %5d %14.0f %14.0f %+7.1f%% %7d->%-4d%s\n",
			r.point, r.oldOps, r.newOps, r.delta*100, r.oldAllocs, r.newAllocs, mark)
	}
	if d.regressed() {
		fmt.Fprintln(w, "  verdict: REGRESSED")
	} else {
		fmt.Fprintln(w, "  verdict: ok")
	}
}
