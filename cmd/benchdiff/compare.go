package main

import (
	"fmt"
	"io"
)

// report mirrors the fields of platformbench's / attackbench's Report that
// the diff needs; unknown fields in the JSON are ignored, so the commands
// can evolve their schemas independently as long as these survive.
type report struct {
	Scenario string         `json:"scenario"`
	Seed     uint64         `json:"seed"`
	Workers  int            `json:"workers"`
	Results  []result       `json:"results"`
	Epoch    *epochRotation `json:"epoch_rotation"`
}

type result struct {
	Procs       int     `json:"procs"`   // platformbench sweeps GOMAXPROCS…
	Workers     int     `json:"workers"` // …attackbench sweeps pool width
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// epochRotation is the subset of platformbench's epoch_rotation block the
// diff gates on. Reports from before the build/swap split carried a single
// swap_p50_ms that covered the whole AdvanceEpoch; with build_p50_ms absent
// (zero) the sum still equals that legacy total, so old and new schemas
// compare on build+swap without special-casing.
type epochRotation struct {
	Rotations  int     `json:"rotations"`
	BuildP50MS float64 `json:"build_p50_ms"`
	SwapP50MS  float64 `json:"swap_p50_ms"`
}

// totalP50 is the comparable rotation cost: build+swap under the new
// schema, the undivided swap under the legacy one.
func (e *epochRotation) totalP50() float64 { return e.BuildP50MS + e.SwapP50MS }

// point is the sweep coordinate results are matched on: GOMAXPROCS for
// platform reports, worker-pool width for attack reports.
func (r result) point() int {
	if r.Procs > 0 {
		return r.Procs
	}
	return r.Workers
}

// row is one sweep point of the diff.
type row struct {
	point     int
	oldOps    float64
	newOps    float64
	delta     float64 // fractional change in ops/sec; negative = slower
	oldAllocs int64
	newAllocs int64
	// verdict flags
	slower    bool // past the throughput threshold (timing: soft under -timing-warn)
	newAllocd bool // allocation appeared on a previously allocation-free path
	missing   bool // present in old, absent in new
}

// epochRow is the rotation-cost comparison when both reports carry an
// epoch_rotation block.
type epochRow struct {
	oldMS  float64
	newMS  float64
	delta  float64 // fractional change in rotation p50 cost; positive = slower
	slower bool    // past threshold (timing: soft under -timing-warn)
}

// diff is the full comparison.
type diff struct {
	rows         []row
	epoch        *epochRow
	epochMissing bool // baseline rotated, candidate did not — always hard
	mismatch     string
}

// compare matches results by sweep point (GOMAXPROCS or worker count) and
// flags regressions: a throughput drop beyond threshold, or any allocation
// on a path that was allocation-free in the baseline. Extra points in the
// candidate are ignored; points missing from it are themselves a failure
// (the sweep shrank). When both reports carry an epoch_rotation block the
// p50 rotation cost is compared on the same threshold; a baseline with
// rotations whose candidate has none is treated like a missing sweep point.
func compare(oldRep, newRep *report, threshold float64) *diff {
	d := &diff{}
	if oldRep.Scenario != newRep.Scenario || oldRep.Seed != newRep.Seed || oldRep.Workers != newRep.Workers {
		d.mismatch = fmt.Sprintf("baseline ran scenario=%s seed=%d workers=%d, candidate scenario=%s seed=%d workers=%d — comparing anyway, treat deltas with suspicion",
			oldRep.Scenario, oldRep.Seed, oldRep.Workers, newRep.Scenario, newRep.Seed, newRep.Workers)
	}
	byPoint := map[int]result{}
	for _, r := range newRep.Results {
		byPoint[r.point()] = r
	}
	for _, o := range oldRep.Results {
		n, ok := byPoint[o.point()]
		if !ok {
			d.rows = append(d.rows, row{point: o.point(), oldOps: o.OpsPerSec, oldAllocs: o.AllocsPerOp, missing: true})
			continue
		}
		r := row{
			point:     o.point(),
			oldOps:    o.OpsPerSec,
			newOps:    n.OpsPerSec,
			oldAllocs: o.AllocsPerOp,
			newAllocs: n.AllocsPerOp,
		}
		if o.OpsPerSec > 0 {
			r.delta = (n.OpsPerSec - o.OpsPerSec) / o.OpsPerSec
		}
		r.slower = r.delta < -threshold
		r.newAllocd = o.AllocsPerOp == 0 && n.AllocsPerOp > 0
		d.rows = append(d.rows, r)
	}
	if oldRep.Epoch != nil && oldRep.Epoch.Rotations > 0 {
		if newRep.Epoch == nil || newRep.Epoch.Rotations == 0 {
			d.epochMissing = true
		} else {
			e := &epochRow{oldMS: oldRep.Epoch.totalP50(), newMS: newRep.Epoch.totalP50()}
			if e.oldMS > 0 {
				e.delta = (e.newMS - e.oldMS) / e.oldMS
			}
			e.slower = e.delta > threshold
			d.epoch = e
		}
	}
	return d
}

// regressed reports whether the diff should gate. With timingWarn, timing
// movements (throughput, rotation cost) only warn; structural regressions —
// a vanished sweep point, a lost rotation block, or an allocation appearing
// on a previously allocation-free path — fail regardless, since those are
// deterministic properties no noisy CI machine can excuse.
func (d *diff) regressed(timingWarn bool) bool {
	for _, r := range d.rows {
		if r.newAllocd || r.missing {
			return true
		}
		if r.slower && !timingWarn {
			return true
		}
	}
	if d.epochMissing {
		return true
	}
	if d.epoch != nil && d.epoch.slower && !timingWarn {
		return true
	}
	return false
}

func (d *diff) print(w io.Writer, oldPath, newPath string, threshold float64, timingWarn bool) {
	fmt.Fprintf(w, "benchdiff: %s vs %s (threshold %.0f%%)\n", oldPath, newPath, threshold*100)
	if d.mismatch != "" {
		fmt.Fprintf(w, "  warning: %s\n", d.mismatch)
	}
	timingMark := "  REGRESSION: past threshold"
	if timingWarn {
		timingMark = "  warning: past threshold (timing, warn-only)"
	}
	fmt.Fprintf(w, "  %5s %14s %14s %8s %12s\n", "point", "old ops/s", "new ops/s", "delta", "allocs/op")
	for _, r := range d.rows {
		if r.missing {
			fmt.Fprintf(w, "  %5d %14.0f %14s %8s %12s  REGRESSION: point missing from candidate\n",
				r.point, r.oldOps, "-", "-", "-")
			continue
		}
		mark := ""
		switch {
		case r.newAllocd:
			mark = "  REGRESSION: allocation-free path now allocates"
		case r.slower:
			mark = timingMark
		}
		fmt.Fprintf(w, "  %5d %14.0f %14.0f %+7.1f%% %7d->%-4d%s\n",
			r.point, r.oldOps, r.newOps, r.delta*100, r.oldAllocs, r.newAllocs, mark)
	}
	if d.epochMissing {
		fmt.Fprintln(w, "  epoch: REGRESSION: baseline rotated epochs, candidate did not")
	} else if d.epoch != nil {
		mark := ""
		if d.epoch.slower {
			mark = timingMark
		}
		fmt.Fprintf(w, "  epoch: rotation p50 %.2fms -> %.2fms %+.1f%%%s\n",
			d.epoch.oldMS, d.epoch.newMS, d.epoch.delta*100, mark)
	}
	if d.regressed(timingWarn) {
		fmt.Fprintln(w, "  verdict: REGRESSED")
	} else {
		fmt.Fprintln(w, "  verdict: ok")
	}
}
