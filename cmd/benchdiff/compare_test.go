package main

import (
	"bytes"
	"strings"
	"testing"
)

func baseline() *report {
	return &report{
		Scenario: "tiny", Seed: 11, Workers: 8,
		Results: []result{
			{Procs: 1, OpsPerSec: 1_000_000, NsPerOp: 1000, AllocsPerOp: 0},
			{Procs: 4, OpsPerSec: 3_500_000, NsPerOp: 285, AllocsPerOp: 0},
			{Procs: 8, OpsPerSec: 6_000_000, NsPerOp: 166, AllocsPerOp: 2},
		},
	}
}

func TestCompareOK(t *testing.T) {
	oldRep, newRep := baseline(), baseline()
	// Small wobble under the threshold, and an alloc drop, are both fine.
	newRep.Results[0].OpsPerSec = 950_000
	newRep.Results[2].AllocsPerOp = 1
	d := compare(oldRep, newRep, 0.15)
	if d.regressed() {
		t.Fatalf("within-threshold wobble flagged as regression: %+v", d.rows)
	}
	var buf bytes.Buffer
	d.print(&buf, "old.json", "new.json", 0.15)
	if !strings.Contains(buf.String(), "verdict: ok") {
		t.Fatalf("verdict line missing:\n%s", buf.String())
	}
}

func TestCompareThroughputRegression(t *testing.T) {
	oldRep, newRep := baseline(), baseline()
	newRep.Results[1].OpsPerSec = 2_000_000 // -43% at 4 procs
	d := compare(oldRep, newRep, 0.15)
	if !d.regressed() {
		t.Fatal("43% throughput loss not flagged")
	}
	var buf bytes.Buffer
	d.print(&buf, "old.json", "new.json", 0.15)
	out := buf.String()
	if !strings.Contains(out, "REGRESSION: past threshold") || !strings.Contains(out, "verdict: REGRESSED") {
		t.Fatalf("regression not reported:\n%s", out)
	}
}

func TestCompareNewAllocation(t *testing.T) {
	oldRep, newRep := baseline(), baseline()
	newRep.Results[0].AllocsPerOp = 1 // 0 -> 1 on procs=1
	d := compare(oldRep, newRep, 0.15)
	if !d.regressed() {
		t.Fatal("new allocation on allocation-free path not flagged")
	}
	// But allocations growing on an already-allocating path is tolerated.
	oldRep2, newRep2 := baseline(), baseline()
	newRep2.Results[2].AllocsPerOp = 5 // 2 -> 5 on procs=8
	if compare(oldRep2, newRep2, 0.15).regressed() {
		t.Fatal("alloc growth on already-allocating path should not gate")
	}
}

func TestCompareMissingPoint(t *testing.T) {
	oldRep, newRep := baseline(), baseline()
	newRep.Results = newRep.Results[:2] // procs=8 vanished
	d := compare(oldRep, newRep, 0.15)
	if !d.regressed() {
		t.Fatal("missing sweep point not flagged")
	}
	var buf bytes.Buffer
	d.print(&buf, "old.json", "new.json", 0.15)
	if !strings.Contains(buf.String(), "point missing from candidate") {
		t.Fatalf("missing point not reported:\n%s", buf.String())
	}
}

// TestCompareWorkersPoints: attackbench reports key their sweep on the
// worker-pool width instead of GOMAXPROCS; matching and gating must work
// the same way.
func TestCompareWorkersPoints(t *testing.T) {
	attack := func() *report {
		return &report{
			Scenario: "hs1", Seed: 2013,
			Results: []result{
				{Workers: 1, OpsPerSec: 4_000, AllocsPerOp: 100},
				{Workers: 4, OpsPerSec: 14_000, AllocsPerOp: 110},
				{Workers: 8, OpsPerSec: 22_000, AllocsPerOp: 120},
			},
		}
	}
	if d := compare(attack(), attack(), 0.15); d.regressed() {
		t.Fatalf("identical attack reports flagged: %+v", d.rows)
	}
	oldRep, newRep := attack(), attack()
	newRep.Results[2].OpsPerSec = 10_000 // -55% at workers=8
	d := compare(oldRep, newRep, 0.15)
	if !d.regressed() {
		t.Fatal("throughput loss on a workers-keyed point not flagged")
	}
	var buf bytes.Buffer
	d.print(&buf, "old.json", "new.json", 0.15)
	if !strings.Contains(buf.String(), "REGRESSION: past threshold") {
		t.Fatalf("regression not reported:\n%s", buf.String())
	}
}

func TestCompareConfigMismatchWarns(t *testing.T) {
	oldRep, newRep := baseline(), baseline()
	newRep.Scenario = "hs1"
	d := compare(oldRep, newRep, 0.15)
	if d.mismatch == "" {
		t.Fatal("scenario mismatch should produce a warning")
	}
	if d.regressed() {
		t.Fatal("mismatch alone is a warning, not a regression")
	}
}
