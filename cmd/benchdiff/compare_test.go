package main

import (
	"bytes"
	"strings"
	"testing"
)

func baseline() *report {
	return &report{
		Scenario: "tiny", Seed: 11, Workers: 8,
		Results: []result{
			{Procs: 1, OpsPerSec: 1_000_000, NsPerOp: 1000, AllocsPerOp: 0},
			{Procs: 4, OpsPerSec: 3_500_000, NsPerOp: 285, AllocsPerOp: 0},
			{Procs: 8, OpsPerSec: 6_000_000, NsPerOp: 166, AllocsPerOp: 2},
		},
	}
}

func TestCompareOK(t *testing.T) {
	oldRep, newRep := baseline(), baseline()
	// Small wobble under the threshold, and an alloc drop, are both fine.
	newRep.Results[0].OpsPerSec = 950_000
	newRep.Results[2].AllocsPerOp = 1
	d := compare(oldRep, newRep, 0.15)
	if d.regressed(false) {
		t.Fatalf("within-threshold wobble flagged as regression: %+v", d.rows)
	}
	var buf bytes.Buffer
	d.print(&buf, "old.json", "new.json", 0.15, false)
	if !strings.Contains(buf.String(), "verdict: ok") {
		t.Fatalf("verdict line missing:\n%s", buf.String())
	}
}

func TestCompareThroughputRegression(t *testing.T) {
	oldRep, newRep := baseline(), baseline()
	newRep.Results[1].OpsPerSec = 2_000_000 // -43% at 4 procs
	d := compare(oldRep, newRep, 0.15)
	if !d.regressed(false) {
		t.Fatal("43% throughput loss not flagged")
	}
	var buf bytes.Buffer
	d.print(&buf, "old.json", "new.json", 0.15, false)
	out := buf.String()
	if !strings.Contains(out, "REGRESSION: past threshold") || !strings.Contains(out, "verdict: REGRESSED") {
		t.Fatalf("regression not reported:\n%s", out)
	}
}

func TestCompareNewAllocation(t *testing.T) {
	oldRep, newRep := baseline(), baseline()
	newRep.Results[0].AllocsPerOp = 1 // 0 -> 1 on procs=1
	d := compare(oldRep, newRep, 0.15)
	if !d.regressed(false) {
		t.Fatal("new allocation on allocation-free path not flagged")
	}
	// But allocations growing on an already-allocating path is tolerated.
	oldRep2, newRep2 := baseline(), baseline()
	newRep2.Results[2].AllocsPerOp = 5 // 2 -> 5 on procs=8
	if compare(oldRep2, newRep2, 0.15).regressed(false) {
		t.Fatal("alloc growth on already-allocating path should not gate")
	}
}

func TestCompareMissingPoint(t *testing.T) {
	oldRep, newRep := baseline(), baseline()
	newRep.Results = newRep.Results[:2] // procs=8 vanished
	d := compare(oldRep, newRep, 0.15)
	if !d.regressed(false) {
		t.Fatal("missing sweep point not flagged")
	}
	var buf bytes.Buffer
	d.print(&buf, "old.json", "new.json", 0.15, false)
	if !strings.Contains(buf.String(), "point missing from candidate") {
		t.Fatalf("missing point not reported:\n%s", buf.String())
	}
}

// TestCompareWorkersPoints: attackbench reports key their sweep on the
// worker-pool width instead of GOMAXPROCS; matching and gating must work
// the same way.
func TestCompareWorkersPoints(t *testing.T) {
	attack := func() *report {
		return &report{
			Scenario: "hs1", Seed: 2013,
			Results: []result{
				{Workers: 1, OpsPerSec: 4_000, AllocsPerOp: 100},
				{Workers: 4, OpsPerSec: 14_000, AllocsPerOp: 110},
				{Workers: 8, OpsPerSec: 22_000, AllocsPerOp: 120},
			},
		}
	}
	if d := compare(attack(), attack(), 0.15); d.regressed(false) {
		t.Fatalf("identical attack reports flagged: %+v", d.rows)
	}
	oldRep, newRep := attack(), attack()
	newRep.Results[2].OpsPerSec = 10_000 // -55% at workers=8
	d := compare(oldRep, newRep, 0.15)
	if !d.regressed(false) {
		t.Fatal("throughput loss on a workers-keyed point not flagged")
	}
	var buf bytes.Buffer
	d.print(&buf, "old.json", "new.json", 0.15, false)
	if !strings.Contains(buf.String(), "REGRESSION: past threshold") {
		t.Fatalf("regression not reported:\n%s", buf.String())
	}
}

func TestCompareConfigMismatchWarns(t *testing.T) {
	oldRep, newRep := baseline(), baseline()
	newRep.Scenario = "hs1"
	d := compare(oldRep, newRep, 0.15)
	if d.mismatch == "" {
		t.Fatal("scenario mismatch should produce a warning")
	}
	if d.regressed(false) {
		t.Fatal("mismatch alone is a warning, not a regression")
	}
}

// TestCompareTimingWarn: the CI mode — timing movements warn, the
// deterministic properties still gate.
func TestCompareTimingWarn(t *testing.T) {
	oldRep, newRep := baseline(), baseline()
	newRep.Results[1].OpsPerSec = 2_000_000 // -43% at 4 procs
	d := compare(oldRep, newRep, 0.15)
	if d.regressed(true) {
		t.Fatal("throughput loss gated despite -timing-warn")
	}
	if !d.regressed(false) {
		t.Fatal("throughput loss not gated in strict mode")
	}
	var buf bytes.Buffer
	d.print(&buf, "old.json", "new.json", 0.15, true)
	out := buf.String()
	if !strings.Contains(out, "warning: past threshold (timing, warn-only)") {
		t.Fatalf("timing warning not printed:\n%s", out)
	}
	if !strings.Contains(out, "verdict: ok") {
		t.Fatalf("warn-only timing loss should verdict ok:\n%s", out)
	}

	// Allocations and missing points gate even in timing-warn mode.
	oldRep2, newRep2 := baseline(), baseline()
	newRep2.Results[0].AllocsPerOp = 1
	if !compare(oldRep2, newRep2, 0.15).regressed(true) {
		t.Fatal("new allocation not gated under -timing-warn")
	}
	oldRep3, newRep3 := baseline(), baseline()
	newRep3.Results = newRep3.Results[:2]
	if !compare(oldRep3, newRep3, 0.15).regressed(true) {
		t.Fatal("missing sweep point not gated under -timing-warn")
	}
}

// TestCompareEpochRotation: reports carrying an epoch_rotation block gate
// on the p50 rotation cost, warn-only under -timing-warn; a candidate that
// stopped rotating is a hard failure either way.
func TestCompareEpochRotation(t *testing.T) {
	withEpoch := func(build, swap float64) *report {
		r := baseline()
		r.Epoch = &epochRotation{Rotations: 40, BuildP50MS: build, SwapP50MS: swap}
		return r
	}
	// Same cost: ok.
	if d := compare(withEpoch(10, 0.01), withEpoch(10, 0.01), 0.15); d.regressed(false) {
		t.Fatal("identical epoch blocks flagged")
	}
	// Rotation cost doubled: strict gates, timing-warn does not.
	d := compare(withEpoch(10, 0.01), withEpoch(20, 0.01), 0.15)
	if !d.regressed(false) || d.regressed(true) {
		t.Fatalf("doubled rotation cost: strict=%v warn=%v", d.regressed(false), d.regressed(true))
	}
	var buf bytes.Buffer
	d.print(&buf, "old.json", "new.json", 0.15, false)
	if !strings.Contains(buf.String(), "epoch: rotation p50") {
		t.Fatalf("epoch row not printed:\n%s", buf.String())
	}
	// Legacy baseline (pre-split: only swap_p50_ms, meaning build+swap)
	// compares against the new schema's build+swap total.
	if d := compare(withEpoch(0, 10), withEpoch(9.8, 0.05), 0.15); d.regressed(false) {
		t.Fatal("legacy-schema baseline mis-compared against split build/swap")
	}
	// Candidate without rotations when the baseline had them: hard.
	noRot := baseline()
	zeroRot := baseline()
	zeroRot.Epoch = &epochRotation{Rotations: 0}
	for _, cand := range []*report{noRot, zeroRot} {
		d := compare(withEpoch(10, 0.01), cand, 0.15)
		if !d.regressed(true) {
			t.Fatal("lost rotation block not gated")
		}
		buf.Reset()
		d.print(&buf, "old.json", "new.json", 0.15, true)
		if !strings.Contains(buf.String(), "candidate did not") {
			t.Fatalf("lost rotation block not reported:\n%s", buf.String())
		}
	}
	// A candidate growing an epoch block the baseline lacks is fine.
	if d := compare(baseline(), withEpoch(10, 0.01), 0.15); d.regressed(false) {
		t.Fatal("new epoch block in candidate flagged")
	}
}
