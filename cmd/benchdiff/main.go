// Command benchdiff compares two benchmark reports — BENCH_platform.json
// (GOMAXPROCS sweep from platformbench) or BENCH_attack.json (worker-pool
// sweep from attackbench) — and fails with exit status 1 when the new one
// has regressed past a threshold. It is the CI gate that keeps throughput
// honest: run the bench against the working tree, diff it against the
// committed baseline, and a slowdown larger than -threshold (or any new
// allocation on a previously allocation-free path) blocks the change.
// Results are matched by sweep point: "procs" when present, else "workers".
// Reports carrying an epoch_rotation block (BENCH_epoch.json) additionally
// compare the p50 rotation cost on the same threshold.
//
// With -timing-warn the timing comparisons only warn — the mode for noisy
// CI machines — while the deterministic properties (no new allocations, no
// vanished sweep points, rotation block still present) fail hard.
//
// Usage:
//
//	platformbench -out BENCH_platform.json
//	benchdiff -old BENCH_baseline.json -new BENCH_platform.json
//	attackbench -out BENCH_attack_ci.json
//	benchdiff -old BENCH_attack.json -new BENCH_attack_ci.json -threshold 0.3
//	benchdiff -old BENCH_epoch.json -new BENCH_epoch_ci.json -timing-warn
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

func main() {
	oldPath := flag.String("old", "", "baseline report JSON (required)")
	newPath := flag.String("new", "", "candidate report JSON (required)")
	threshold := flag.Float64("threshold", 0.15, "max tolerated throughput loss as a fraction (0.15 = 15%)")
	timingWarn := flag.Bool("timing-warn", false, "timing movements (throughput, rotation cost) only warn; new allocations, missing sweep points, and lost rotation blocks still fail")
	flag.Parse()

	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -old and -new are both required")
		os.Exit(2)
	}
	oldRep, err := readReport(*oldPath)
	if err != nil {
		fatal(err)
	}
	newRep, err := readReport(*newPath)
	if err != nil {
		fatal(err)
	}
	d := compare(oldRep, newRep, *threshold)
	d.print(os.Stdout, *oldPath, *newPath, *threshold, *timingWarn)
	if d.regressed(*timingWarn) {
		os.Exit(1)
	}
}

func readReport(path string) (*report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(r.Results) == 0 {
		return nil, fmt.Errorf("%s has no results", path)
	}
	return &r, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
	os.Exit(1)
}
