// Command servingbench measures the serving plane over real sockets: it
// builds a world, serves it through osnhttp with production timeouts on a
// loopback listener, and sweeps a closed-loop loadgen worker pool over the
// JSON API, reporting RPS and latency percentiles per endpoint. A final
// open-loop pass at a fixed arrival rate records coordinated-omission-free
// percentiles.
//
// The output is benchdiff-compatible (results matched on the workers sweep
// point), so CI diffs a fresh run against the committed BENCH_serving.json:
//
//	servingbench -out BENCH_serving.json
//	benchdiff -old BENCH_serving.json -new BENCH_serving_ci.json
//
// Any 5xx, malformed body, or transport error during the sweep is a hard
// failure — the serving plane is supposed to be clean under load.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"time"

	"hsprofiler/internal/loadgen"
	"hsprofiler/internal/osn"
	"hsprofiler/internal/osnhttp"
	"hsprofiler/internal/worldgen"
)

// Report is the committed benchmark artefact. Scenario/Seed/Workers and
// Results carry the benchdiff contract; the rest is context for humans.
type Report struct {
	Scenario  string       `json:"scenario"`
	Seed      uint64       `json:"seed"`
	Workers   int          `json:"workers"` // 0: the sweep varies workers
	NumCPU    int          `json:"num_cpu"`
	GoVersion string       `json:"go_version"`
	Results   []Result     `json:"results"`
	OpenLoop  *OpenLoopRun `json:"open_loop,omitempty"`
	Timestamp string       `json:"timestamp"`
}

// Result is one closed-loop sweep point. NsPerOp is the mean request
// latency; OpsPerSec is the aggregate RPS across the pool — the two
// numbers benchdiff gates on. Endpoints carries the full per-endpoint
// detail (benchdiff ignores unknown fields).
type Result struct {
	Workers   int                                `json:"workers"`
	NsPerOp   float64                            `json:"ns_per_op"`
	OpsPerSec float64                            `json:"ops_per_sec"`
	Requests  uint64                             `json:"requests"`
	Endpoints map[string]*loadgen.EndpointReport `json:"endpoints"`
}

// OpenLoopRun is the fixed-arrival-rate section: the honest latency
// percentiles quoted in the README.
type OpenLoopRun struct {
	RateTarget  float64                            `json:"rate_target"`
	AchievedRPS float64                            `json:"achieved_rps"`
	Dropped     uint64                             `json:"dropped"`
	Endpoints   map[string]*loadgen.EndpointReport `json:"endpoints"`
	Overall     *loadgen.EndpointReport            `json:"overall"`
}

func main() {
	scenario := flag.String("scenario", "hs1", "world scenario: hs1, hs2, hs3, tiny")
	seed := flag.Uint64("seed", 2013, "world seed")
	duration := flag.Duration("duration", 3*time.Second, "measured window per sweep point")
	warmup := flag.Duration("warmup", 500*time.Millisecond, "warmup per sweep point")
	rate := flag.Float64("rate", 2000, "open-loop arrival rate for the final pass (0 = skip)")
	out := flag.String("out", "BENCH_serving.json", "output path")
	flag.Parse()

	var cfg worldgen.Config
	switch *scenario {
	case "hs1":
		cfg = worldgen.HS1Config()
	case "hs2":
		cfg = worldgen.HS2Config()
	case "hs3":
		cfg = worldgen.HS3Config()
	case "tiny":
		cfg = worldgen.TinyConfig()
	default:
		fatal(fmt.Errorf("unknown scenario %q", *scenario))
	}
	w, err := worldgen.Generate(cfg, *seed)
	if err != nil {
		fatal(err)
	}
	platform := osn.NewPlatform(w, osn.Facebook(), osn.Config{})
	server := osnhttp.NewServer(platform)
	srvCfg := osnhttp.DefaultServerConfig()
	httpSrv := srvCfg.HTTPServer("", server)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("servingbench: %s world (seed %d) on %s, GOMAXPROCS=%d\n",
		*scenario, *seed, base, runtime.GOMAXPROCS(0))

	rep := &Report{
		Scenario:  *scenario,
		Seed:      *seed,
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}
	ctx := context.Background()
	clean := true
	for _, workers := range []int{1, 4, 8} {
		lr, err := loadgen.Run(ctx, loadgen.Config{
			BaseURL:  base,
			Workers:  workers,
			Duration: *duration,
			Warmup:   *warmup,
		})
		if err != nil {
			fatal(err)
		}
		clean = clean && reportClean("closed loop", workers, lr)
		slim(lr)
		rep.Results = append(rep.Results, Result{
			Workers:   workers,
			NsPerOp:   float64(lr.Overall.MeanUs) * 1e3,
			OpsPerSec: lr.RPS,
			Requests:  lr.Requests,
			Endpoints: lr.Endpoints,
		})
		fmt.Printf("  workers=%d: %.0f req/s, mean %s, p99 %s\n", workers, lr.RPS,
			time.Duration(lr.Overall.MeanUs)*time.Microsecond,
			time.Duration(lr.Overall.P99Us)*time.Microsecond)
	}
	if *rate > 0 {
		lr, err := loadgen.Run(ctx, loadgen.Config{
			BaseURL:  base,
			Rate:     *rate,
			Duration: *duration,
			Warmup:   *warmup,
		})
		if err != nil {
			fatal(err)
		}
		clean = clean && reportClean("open loop", 0, lr)
		slim(lr)
		rep.OpenLoop = &OpenLoopRun{
			RateTarget:  *rate,
			AchievedRPS: lr.RPS,
			Dropped:     lr.Dropped,
			Endpoints:   lr.Endpoints,
			Overall:     lr.Overall,
		}
		fmt.Printf("  open loop @%.0f req/s: achieved %.0f, p50 %s, p99 %s, dropped %d\n",
			*rate, lr.RPS,
			time.Duration(lr.Overall.P50Us)*time.Microsecond,
			time.Duration(lr.Overall.P99Us)*time.Microsecond, lr.Dropped)
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("servingbench: report -> %s\n", *out)
	if !clean {
		fatal(fmt.Errorf("serving errors under load (see taxonomy above)"))
	}
}

// slim drops the raw histogram buckets from a run's endpoint reports: the
// committed artefact carries percentiles, not tens of kilobytes of bucket
// arrays (loadgen -out keeps them for ad-hoc analysis).
func slim(lr *loadgen.Report) {
	for _, ep := range lr.Endpoints {
		ep.HistLowsUs, ep.HistCounts = nil, nil
	}
	if lr.Overall != nil {
		lr.Overall.HistLowsUs, lr.Overall.HistCounts = nil, nil
	}
}

// reportClean prints and judges a run's error taxonomy: a loopback bench
// against a fault-free platform must produce no 5xx, no malformed bodies
// and no transport failures. Hidden/404-style outcomes are legitimate
// platform answers and pass.
func reportClean(mode string, workers int, lr *loadgen.Report) bool {
	bad := uint64(0)
	for _, k := range []string{"server_5xx", "malformed", "net_timeout", "net_error", "shed", "throttled", "suspended"} {
		if n := lr.Overall.Errors[k]; n > 0 {
			fmt.Fprintf(os.Stderr, "servingbench: %s workers=%d: %d %s responses\n", mode, workers, n, k)
			bad += n
		}
	}
	return bad == 0
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "servingbench: %v\n", err)
	os.Exit(1)
}
