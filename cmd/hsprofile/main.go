// Command hsprofile runs the high-school profiling attack against a running
// osnd instance — the third party's side of the study.
//
// Usage:
//
//	hsprofile -url http://localhost:8080 -school "Oakfield High School" \
//	          -year 2012 -accounts 2 -mode enhanced -t 400
//
// A long crawl survives interruption: SIGINT cancels the run cleanly, the
// partial crawl is still written to -archive, and a later invocation with
// -resume pointed at that archive continues without re-fetching anything
// already collected.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"hsprofiler/internal/core"
	"hsprofiler/internal/crawler"
	"hsprofiler/internal/extend"
	"hsprofiler/internal/obs"
	"hsprofiler/internal/obs/evlog"
	"hsprofiler/internal/osnhttp"
	"hsprofiler/internal/store"
)

// runOutputs gathers every observability artifact of one run — the trace,
// the manifest, the metrics registry and the event log — behind a single
// idempotent flush, so the clean-exit, interrupted and fatal paths all write
// the same files. Before this existed, SIGINT lost the trace and manifest.
type runOutputs struct {
	tracePath, manifestPath, eventsPath string

	tr       *obs.Trace
	manifest *obs.Manifest
	reg      *obs.Registry
	lg       *evlog.Logger
	events   *os.File

	flushed bool
}

// newRunOutputs wires up whichever artifacts were requested. Empty paths
// leave their artifact nil (and the corresponding layers no-op).
func newRunOutputs(tracePath, manifestPath, eventsPath string) (*runOutputs, error) {
	o := &runOutputs{tracePath: tracePath, manifestPath: manifestPath, eventsPath: eventsPath}
	if manifestPath != "" || tracePath != "" {
		o.reg = obs.NewRegistry()
	}
	if tracePath != "" || manifestPath != "" {
		o.tr = obs.NewTrace("hsprofile")
	}
	if manifestPath != "" {
		o.manifest = obs.NewManifest("hsprofile")
	}
	if eventsPath != "" {
		f, err := os.Create(eventsPath)
		if err != nil {
			return nil, err
		}
		o.events = f
		o.lg = evlog.New(evlog.Options{Sink: f})
	}
	return o, nil
}

// flush writes every requested artifact exactly once; later calls are
// no-ops. With dumpRing set (the interrupted and fatal paths) the flight
// recorder's last events are replayed to stderr first — the crash context.
// Errors are reported to stderr rather than fatal, so a failing flush never
// prevents the remaining artifacts from being written.
func (o *runOutputs) flush(dumpRing bool) {
	if o == nil || o.flushed {
		return
	}
	o.flushed = true
	if dumpRing && o.lg != nil && o.lg.RingLen() > 0 {
		fmt.Fprintf(os.Stderr, "hsprofile: flight recorder (last %d events):\n", o.lg.RingLen())
		if _, err := o.lg.DumpRing(os.Stderr); err != nil {
			fmt.Fprintf(os.Stderr, "hsprofile: ring dump: %v\n", err)
		}
	}
	if o.tr != nil {
		o.tr.Finish()
	}
	if o.tracePath != "" {
		out := os.Stderr
		if o.tracePath != "-" {
			f, err := os.Create(o.tracePath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hsprofile: trace: %v\n", err)
				out = nil
			} else {
				defer f.Close()
				out = f
			}
		}
		if out != nil {
			o.tr.WriteTree(out)
			if o.tracePath != "-" {
				fmt.Printf("trace: span tree -> %s\n", o.tracePath)
			}
		}
	}
	if o.manifestPath != "" {
		o.manifest.AddTrace(o.tr)
		o.manifest.AddCounters(o.reg)
		o.manifest.AddMetrics(o.reg)
		o.manifest.Finish()
		if f, err := os.Create(o.manifestPath); err != nil {
			fmt.Fprintf(os.Stderr, "hsprofile: manifest: %v\n", err)
		} else {
			if err := o.manifest.WriteJSON(f); err != nil {
				fmt.Fprintf(os.Stderr, "hsprofile: manifest: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "hsprofile: manifest: %v\n", err)
			} else {
				fmt.Printf("manifest: %s\n", o.manifestPath)
			}
		}
	}
	if o.events != nil {
		if err := o.events.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "hsprofile: event log: %v\n", err)
		} else {
			fmt.Printf("events: %d logged -> %s\n", o.lg.Events(), o.eventsPath)
		}
	}
}

func main() {
	url := flag.String("url", "http://localhost:8080", "osnd base URL")
	school := flag.String("school", "", "target high school name (required)")
	year := flag.Int("year", 2012, "current senior-class graduation year")
	accounts := flag.Int("accounts", 2, "fake accounts to register")
	mode := flag.String("mode", "enhanced", "methodology: basic, enhanced")
	threshold := flag.Int("t", 400, "selection threshold t")
	epsilon := flag.Float64("epsilon", 1, "enhanced over-fetch factor")
	filtering := flag.Bool("filter", true, "apply the Section 4.4 filters")
	pace := flag.Duration("pace", 0, "politeness delay between requests (e.g. 200ms)")
	dossiers := flag.Bool("dossiers", false, "run the Section 6 profile extension and report dossier stats")
	archive := flag.String("archive", "", "write the crawl archive (profiles + friend lists) as JSON to this file")
	resume := flag.String("resume", "", "resume from a crawl archive written by a previous (possibly interrupted) run")
	failureBudget := flag.Int("failure-budget", 0, "how many per-item fetch failures to absorb before aborting (0 = fail fast)")
	workers := flag.Int("workers", 1, "parallel fetch workers for the attack crawl and the Section 6 dossier crawl (1 = sequential; ranked output is identical at any setting)")
	reqTimeout := flag.Duration("req-timeout", 0, "per-request timeout; overrunning requests are abandoned and retried (0 = unbounded)")
	traceOut := flag.String("trace-out", "", "write the run's span tree to this file (\"-\" for stderr) and show live phase progress")
	manifestOut := flag.String("manifest-out", "", "write a JSON run manifest (params, git describe, phase timings, effort counters) to this file")
	eventsOut := flag.String("events-out", "", "write the structured event log (JSONL) to this file; also arms the flight recorder dumped to stderr on interrupt")
	reqSeed := flag.Uint64("req-seed", 1, "request-id seed: every request carries a deterministic X-Osn-Request-Id derived from this seed and its path, so attacker-side wire events join to the server's access log")
	flag.Parse()

	if *school == "" {
		fmt.Fprintln(os.Stderr, "hsprofile: -school is required")
		os.Exit(2)
	}
	// Observability artifacts (metrics, trace, manifest, event log) exist
	// whenever their outputs are asked for; nil handles keep every layer a
	// no-op otherwise. Built before the client so registration traffic is
	// already on the wire log.
	out, err := newRunOutputs(*traceOut, *manifestOut, *eventsOut)
	if err != nil {
		fatal(err)
	}
	var pacer osnhttp.Pacer = osnhttp.NoPace{}
	if *pace > 0 {
		pacer = osnhttp.SleepPace{Interval: *pace}
	}
	client := osnhttp.NewClient(*url, nil, pacer).WithSeed(*reqSeed).WithLog(out.lg)
	if err := client.RegisterAccounts(*accounts); err != nil {
		fatal(err)
	}
	// All fetches flow through a crawl store (the study kept its parses in
	// an SQL database); -archive exports it and -resume reloads it, so an
	// interrupted crawl picks up where it stopped.
	crawlStore := store.New()
	if *resume != "" {
		f, err := os.Open(*resume)
		if err != nil {
			fatal(err)
		}
		crawlStore, err = store.ReadJSON(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		st := crawlStore.Stats()
		fmt.Printf("resuming: %d profiles, %d friend lists, %d partial lists already archived\n",
			st.Profiles, st.FriendLists+st.HiddenLists, st.PartialLists)
	}
	cached := store.NewCachedClient(client, crawlStore)
	sess := crawler.NewSession(cached).Instrument(out.reg).WithLog(out.lg)
	sess.Timeout = *reqTimeout

	// SIGINT cancels the crawl between requests; the archive below is
	// written either way, so the next -resume run continues from here.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if out.tr != nil {
		if *traceOut != "" {
			out.tr.OnStart = func(s *obs.Span) {
				if s.Depth() == 1 { // methodology steps, not per-request spans
					fmt.Fprintf(os.Stderr, "hsprofile: ▶ %s\n", s.Name())
				}
			}
		}
		ctx = out.tr.Context(ctx)
	}
	ctx = evlog.NewContext(ctx, out.lg)

	if out.manifest != nil {
		out.manifest.Scenario = *school
		for k, v := range map[string]any{
			"url": *url, "school": *school, "year": *year, "accounts": *accounts,
			"mode": *mode, "t": *threshold, "epsilon": *epsilon, "filter": *filtering,
			"pace": pace.String(), "failure-budget": *failureBudget,
			"workers": *workers, "req-timeout": reqTimeout.String(),
		} {
			out.manifest.SetParam(k, v)
		}
	}

	m := core.Basic
	if *mode == "enhanced" {
		m = core.Enhanced
	}
	start := time.Now()
	res, err := core.RunContext(ctx, sess, core.Params{
		SchoolName:    *school,
		CurrentYear:   *year,
		Mode:          m,
		Epsilon:       *epsilon,
		MaxThreshold:  *threshold,
		FetchProfiles: *filtering,
		FailureBudget: *failureBudget,
		Workers:       *workers,
	})
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "hsprofile: interrupted; writing partial archive")
			writeArchive(*archive, crawlStore, out.lg)
			// The trace, manifest and event log are flushed on interrupt
			// too — a day-long crawl's observability must survive ^C.
			out.flush(true)
			os.Exit(130)
		}
		writeArchive(*archive, crawlStore, out.lg)
		out.flush(true)
		fatal(err)
	}
	sel := res.Select(*threshold, *filtering)

	fmt.Printf("target: %s (%s)\n", res.School.Name, res.School.City)
	fmt.Printf("seeds: %d   core: %d   extended core: %d   candidates: %d\n",
		len(res.Seeds), res.SeedCoreSize, res.ExtendedCoreSize, res.CandidateCount())
	fmt.Printf("effort: %d seed + %d profile + %d friend-list = %d requests in %s\n",
		res.Effort.SeedRequests, res.Effort.ProfileRequests,
		res.Effort.FriendListRequests, res.Effort.Total(), time.Since(start).Round(time.Millisecond))
	if res.Retries.Total() > 0 || res.Failures.Total() > 0 || res.FailedFetches > 0 {
		fmt.Printf("resilience: %d retries (%d seed, %d profile, %d friend-list), %d hard failures, %d items absorbed\n",
			res.Retries.Total(), res.Retries.SeedRequests, res.Retries.ProfileRequests,
			res.Retries.FriendListRequests, res.Failures.Total(), res.FailedFetches)
	}
	if saved := cached.Saved().Total(); saved > 0 {
		fmt.Printf("archive cache: %d requests served locally\n", saved)
	}
	fmt.Printf("inferred students (|H| = %d):\n", len(sel))

	byYear := map[int]int{}
	for _, s := range sel {
		byYear[s.GradYear]++
	}
	years := make([]int, 0, len(byYear))
	for y := range byYear {
		years = append(years, y)
	}
	sort.Ints(years)
	for _, y := range years {
		fmt.Printf("  class of %d: %d students\n", y, byYear[y])
	}

	if *dossiers {
		var d *extend.Dossier
		// Dossier effort is reported either way: the parallel path tallies on
		// the fetcher (attempts issued, merged into the same obs counters as
		// the session when instrumented), the sequential path on the session.
		var dossierEffort crawler.Effort
		dctx, span := obs.StartSpan(ctx, "build-dossiers")
		if *workers > 1 {
			fetcher := crawler.NewFetcher(cached, *workers).Instrument(out.reg).WithLog(out.lg)
			fetcher.Timeout = *reqTimeout
			d, err = extend.BuildParallel(dctx, fetcher, sel)
			dossierEffort = fetcher.Effort()
		} else {
			before := sess.Effort
			d, err = extend.Build(sess.WithContext(dctx), sel)
			sess.WithContext(ctx)
			dossierEffort = sess.Effort.Sub(before)
		}
		span.End()
		if err != nil {
			out.flush(true)
			fatal(err)
		}
		minors := d.MinorProfiles(sel, res.School)
		st := d.AdultMinorTable(sel, *year)
		fmt.Printf("\nSection 6 extension:\n")
		fmt.Printf("  registered-minor dossiers: %d (avg %.1f recovered friends each)\n",
			len(minors), d.AvgRecoveredFriends(sel))
		fmt.Printf("  minors registered as adults: %d (%.0f%% public friend lists, %.0f%% messageable)\n",
			st.Count, st.FriendListPublic*100, st.MessageLink*100)
		fmt.Printf("  dossier effort: %d profile + %d friend-list = %d requests\n",
			dossierEffort.ProfileRequests, dossierEffort.FriendListRequests, dossierEffort.Total())
	}

	// Result parameters land in the manifest so a run report can print the
	// Table 2-4 summary without re-parsing stdout.
	if out.manifest != nil {
		out.manifest.SetParam("result_selected", len(sel))
		byYearParam := make(map[string]int, len(byYear))
		for y, n := range byYear {
			byYearParam[fmt.Sprintf("%d", y)] = n
		}
		out.manifest.SetParam("result_by_year", byYearParam)
		out.manifest.SetParam("result_seeds", len(res.Seeds))
		out.manifest.SetParam("result_core", res.SeedCoreSize)
		out.manifest.SetParam("result_extended_core", res.ExtendedCoreSize)
		out.manifest.SetParam("result_candidates", res.CandidateCount())
	}

	writeArchive(*archive, crawlStore, out.lg)
	out.flush(false)
}

// writeArchive exports the crawl store to path (no-op when path is empty).
// It is called on success, interruption, and failure alike: whatever was
// fetched is never lost. Each export is logged as a "checkpoint" event.
func writeArchive(path string, crawlStore *store.Store, lg *evlog.Logger) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := crawlStore.WriteJSON(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	st := crawlStore.Stats()
	lg.Info(context.Background(), "checkpoint", "archive written",
		evlog.Str("path", path), evlog.Int("profiles", st.Profiles),
		evlog.Int("friend_lists", st.FriendLists+st.HiddenLists),
		evlog.Int("partial_lists", st.PartialLists))
	fmt.Printf("\narchive: %d profiles, %d friend lists (%d hidden), %d partial -> %s\n",
		st.Profiles, st.FriendLists, st.HiddenLists, st.PartialLists, path)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "hsprofile: %v\n", err)
	os.Exit(1)
}
