// Command hsprofile runs the high-school profiling attack against a running
// osnd instance — the third party's side of the study.
//
// Usage:
//
//	hsprofile -url http://localhost:8080 -school "Oakfield High School" \
//	          -year 2012 -accounts 2 -mode enhanced -t 400
//
// A long crawl survives interruption: SIGINT cancels the run cleanly, the
// partial crawl is still written to -archive, and a later invocation with
// -resume pointed at that archive continues without re-fetching anything
// already collected.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"hsprofiler/internal/core"
	"hsprofiler/internal/crawler"
	"hsprofiler/internal/extend"
	"hsprofiler/internal/obs"
	"hsprofiler/internal/osnhttp"
	"hsprofiler/internal/store"
)

func main() {
	url := flag.String("url", "http://localhost:8080", "osnd base URL")
	school := flag.String("school", "", "target high school name (required)")
	year := flag.Int("year", 2012, "current senior-class graduation year")
	accounts := flag.Int("accounts", 2, "fake accounts to register")
	mode := flag.String("mode", "enhanced", "methodology: basic, enhanced")
	threshold := flag.Int("t", 400, "selection threshold t")
	epsilon := flag.Float64("epsilon", 1, "enhanced over-fetch factor")
	filtering := flag.Bool("filter", true, "apply the Section 4.4 filters")
	pace := flag.Duration("pace", 0, "politeness delay between requests (e.g. 200ms)")
	dossiers := flag.Bool("dossiers", false, "run the Section 6 profile extension and report dossier stats")
	archive := flag.String("archive", "", "write the crawl archive (profiles + friend lists) as JSON to this file")
	resume := flag.String("resume", "", "resume from a crawl archive written by a previous (possibly interrupted) run")
	failureBudget := flag.Int("failure-budget", 0, "how many per-item fetch failures to absorb before aborting (0 = fail fast)")
	workers := flag.Int("workers", 1, "parallel fetch workers for the Section 6 dossier crawl (1 = sequential)")
	reqTimeout := flag.Duration("req-timeout", 0, "per-request timeout; overrunning requests are abandoned and retried (0 = unbounded)")
	traceOut := flag.String("trace-out", "", "write the run's span tree to this file (\"-\" for stderr) and show live phase progress")
	manifestOut := flag.String("manifest-out", "", "write a JSON run manifest (params, git describe, phase timings, effort counters) to this file")
	flag.Parse()

	if *school == "" {
		fmt.Fprintln(os.Stderr, "hsprofile: -school is required")
		os.Exit(2)
	}
	var pacer osnhttp.Pacer = osnhttp.NoPace{}
	if *pace > 0 {
		pacer = osnhttp.SleepPace{Interval: *pace}
	}
	client := osnhttp.NewClient(*url, nil, pacer)
	if err := client.RegisterAccounts(*accounts); err != nil {
		fatal(err)
	}
	// All fetches flow through a crawl store (the study kept its parses in
	// an SQL database); -archive exports it and -resume reloads it, so an
	// interrupted crawl picks up where it stopped.
	crawlStore := store.New()
	if *resume != "" {
		f, err := os.Open(*resume)
		if err != nil {
			fatal(err)
		}
		crawlStore, err = store.ReadJSON(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		st := crawlStore.Stats()
		fmt.Printf("resuming: %d profiles, %d friend lists, %d partial lists already archived\n",
			st.Profiles, st.FriendLists+st.HiddenLists, st.PartialLists)
	}
	cached := store.NewCachedClient(client, crawlStore)
	// Metrics and the trace exist whenever either output wants them; a nil
	// registry/trace keeps the whole obs layer a no-op otherwise.
	var reg *obs.Registry
	if *manifestOut != "" || *traceOut != "" {
		reg = obs.NewRegistry()
	}
	sess := crawler.NewSession(cached).Instrument(reg)
	sess.Timeout = *reqTimeout

	// SIGINT cancels the crawl between requests; the archive below is
	// written either way, so the next -resume run continues from here.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var tr *obs.Trace
	if *traceOut != "" || *manifestOut != "" {
		tr = obs.NewTrace("hsprofile")
		if *traceOut != "" {
			tr.OnStart = func(s *obs.Span) {
				if s.Depth() == 1 { // methodology steps, not per-request spans
					fmt.Fprintf(os.Stderr, "hsprofile: ▶ %s\n", s.Name())
				}
			}
		}
		ctx = tr.Context(ctx)
	}

	var manifest *obs.Manifest
	if *manifestOut != "" {
		manifest = obs.NewManifest("hsprofile")
		manifest.Scenario = *school
		for k, v := range map[string]any{
			"url": *url, "school": *school, "year": *year, "accounts": *accounts,
			"mode": *mode, "t": *threshold, "epsilon": *epsilon, "filter": *filtering,
			"pace": pace.String(), "failure-budget": *failureBudget,
			"workers": *workers, "req-timeout": reqTimeout.String(),
		} {
			manifest.SetParam(k, v)
		}
	}

	m := core.Basic
	if *mode == "enhanced" {
		m = core.Enhanced
	}
	start := time.Now()
	res, err := core.RunContext(ctx, sess, core.Params{
		SchoolName:    *school,
		CurrentYear:   *year,
		Mode:          m,
		Epsilon:       *epsilon,
		MaxThreshold:  *threshold,
		FetchProfiles: *filtering,
		FailureBudget: *failureBudget,
	})
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "hsprofile: interrupted; writing partial archive")
			writeArchive(*archive, crawlStore)
			os.Exit(130)
		}
		writeArchive(*archive, crawlStore)
		fatal(err)
	}
	sel := res.Select(*threshold, *filtering)

	fmt.Printf("target: %s (%s)\n", res.School.Name, res.School.City)
	fmt.Printf("seeds: %d   core: %d   extended core: %d   candidates: %d\n",
		len(res.Seeds), res.SeedCoreSize, res.ExtendedCoreSize, res.CandidateCount())
	fmt.Printf("effort: %d seed + %d profile + %d friend-list = %d requests in %s\n",
		res.Effort.SeedRequests, res.Effort.ProfileRequests,
		res.Effort.FriendListRequests, res.Effort.Total(), time.Since(start).Round(time.Millisecond))
	if res.Retries.Total() > 0 || res.Failures.Total() > 0 || res.FailedFetches > 0 {
		fmt.Printf("resilience: %d retries (%d seed, %d profile, %d friend-list), %d hard failures, %d items absorbed\n",
			res.Retries.Total(), res.Retries.SeedRequests, res.Retries.ProfileRequests,
			res.Retries.FriendListRequests, res.Failures.Total(), res.FailedFetches)
	}
	if saved := cached.Saved().Total(); saved > 0 {
		fmt.Printf("archive cache: %d requests served locally\n", saved)
	}
	fmt.Printf("inferred students (|H| = %d):\n", len(sel))

	byYear := map[int]int{}
	for _, s := range sel {
		byYear[s.GradYear]++
	}
	years := make([]int, 0, len(byYear))
	for y := range byYear {
		years = append(years, y)
	}
	sort.Ints(years)
	for _, y := range years {
		fmt.Printf("  class of %d: %d students\n", y, byYear[y])
	}

	if *dossiers {
		var d *extend.Dossier
		// Dossier effort is reported either way: the parallel path tallies on
		// the fetcher (attempts issued, merged into the same obs counters as
		// the session when instrumented), the sequential path on the session.
		var dossierEffort crawler.Effort
		dctx, span := obs.StartSpan(ctx, "build-dossiers")
		if *workers > 1 {
			fetcher := crawler.NewFetcher(cached, *workers).Instrument(reg)
			fetcher.Timeout = *reqTimeout
			d, err = extend.BuildParallel(dctx, fetcher, sel)
			dossierEffort = fetcher.Effort()
		} else {
			before := sess.Effort
			d, err = extend.Build(sess, sel)
			dossierEffort = sess.Effort.Sub(before)
		}
		span.End()
		if err != nil {
			fatal(err)
		}
		minors := d.MinorProfiles(sel, res.School)
		st := d.AdultMinorTable(sel, *year)
		fmt.Printf("\nSection 6 extension:\n")
		fmt.Printf("  registered-minor dossiers: %d (avg %.1f recovered friends each)\n",
			len(minors), d.AvgRecoveredFriends(sel))
		fmt.Printf("  minors registered as adults: %d (%.0f%% public friend lists, %.0f%% messageable)\n",
			st.Count, st.FriendListPublic*100, st.MessageLink*100)
		fmt.Printf("  dossier effort: %d profile + %d friend-list = %d requests\n",
			dossierEffort.ProfileRequests, dossierEffort.FriendListRequests, dossierEffort.Total())
	}

	writeArchive(*archive, crawlStore)
	writeObservability(*traceOut, *manifestOut, tr, manifest, reg)
}

// writeObservability dumps the span tree and the run manifest, as asked.
func writeObservability(tracePath, manifestPath string, tr *obs.Trace, manifest *obs.Manifest, reg *obs.Registry) {
	if tr != nil {
		tr.Finish()
	}
	if tracePath != "" {
		out := os.Stderr
		if tracePath != "-" {
			f, err := os.Create(tracePath)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			out = f
		}
		tr.WriteTree(out)
		if tracePath != "-" {
			fmt.Printf("trace: span tree -> %s\n", tracePath)
		}
	}
	if manifestPath != "" {
		manifest.AddTrace(tr)
		manifest.AddCounters(reg)
		manifest.Finish()
		f, err := os.Create(manifestPath)
		if err != nil {
			fatal(err)
		}
		if err := manifest.WriteJSON(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("manifest: %s\n", manifestPath)
	}
}

// writeArchive exports the crawl store to path (no-op when path is empty).
// It is called on success, interruption, and failure alike: whatever was
// fetched is never lost.
func writeArchive(path string, crawlStore *store.Store) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := crawlStore.WriteJSON(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	st := crawlStore.Stats()
	fmt.Printf("\narchive: %d profiles, %d friend lists (%d hidden), %d partial -> %s\n",
		st.Profiles, st.FriendLists, st.HiddenLists, st.PartialLists, path)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "hsprofile: %v\n", err)
	os.Exit(1)
}
