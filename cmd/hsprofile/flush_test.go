package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hsprofiler/internal/obs"
	"hsprofiler/internal/obs/evlog"
)

// TestFlushOnInterrupt is the regression test for the SIGINT bug: an
// interrupted run must still write the trace, the manifest and the event
// log, exactly as a clean exit would. It drives runOutputs the way main's
// interrupted branch does (flush(true)) and parses every artifact back.
func TestFlushOnInterrupt(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.txt")
	manifestPath := filepath.Join(dir, "manifest.json")
	eventsPath := filepath.Join(dir, "events.jsonl")

	out, err := newRunOutputs(tracePath, manifestPath, eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	if out.tr == nil || out.manifest == nil || out.reg == nil || out.lg == nil {
		t.Fatal("all artifacts should be armed when all outputs are requested")
	}

	// Simulate a run that gets partway through before the interrupt.
	ctx := evlog.NewContext(out.tr.Context(context.Background()), out.lg)
	stepCtx, span := obs.StartSpan(ctx, "collect-seeds")
	out.lg.Info(stepCtx, "crawl", "request", evlog.Str("category", "seed"))
	span.End()
	out.reg.Counter("crawl_requests_total", "", obs.L("category", "seed")).Inc()
	out.manifest.SetParam("school", "Test High")

	out.flush(true) // the interrupted path
	out.flush(true) // must be idempotent: main flushes before fatal too

	var manifest obs.Manifest
	mb, err := os.ReadFile(manifestPath)
	if err != nil {
		t.Fatalf("manifest not written on interrupt: %v", err)
	}
	if err := json.Unmarshal(mb, &manifest); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if manifest.Tool != "hsprofile" || manifest.Params["school"] != "Test High" {
		t.Fatalf("manifest content wrong: %+v", manifest)
	}
	if len(manifest.Phases) == 0 {
		t.Fatal("interrupted manifest lost its phase timings")
	}
	if manifest.Counters[`crawl_requests_total{category="seed"}`] != 1 {
		t.Fatalf("interrupted manifest lost its counters: %v", manifest.Counters)
	}
	if manifest.Metrics == nil {
		t.Fatal("interrupted manifest lost its metrics snapshot")
	}
	if manifest.FinishedAt.IsZero() {
		t.Fatal("manifest not finished")
	}

	tb, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("trace not written on interrupt: %v", err)
	}
	if !strings.Contains(string(tb), "collect-seeds") {
		t.Fatalf("trace tree missing the open step:\n%s", tb)
	}

	eb, err := os.ReadFile(eventsPath)
	if err != nil {
		t.Fatalf("event log not written on interrupt: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(eb)), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d event lines, want 1:\n%s", len(lines), eb)
	}
	var e map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatalf("event line is not valid JSON: %v", err)
	}
	if e["cat"] != "crawl" || e["span"] != float64(span.ID()) {
		t.Fatalf("event not correlated to its step span: %v", e)
	}
}

// TestFlushNothingRequested checks the all-defaults path stays inert.
func TestFlushNothingRequested(t *testing.T) {
	out, err := newRunOutputs("", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if out.tr != nil || out.manifest != nil || out.reg != nil || out.lg != nil {
		t.Fatal("no artifacts should be armed without output flags")
	}
	out.flush(true) // must not panic or write anything
}
