// Command worldgen generates a synthetic world and writes a snapshot.
//
// Usage:
//
//	worldgen -scenario hs1 -seed 2013 -o hs1.json
//	worldgen -scenario hs1 -format bin -o hs1.world          # compact binary snapshot
//	worldgen -scenario city -schools 4 -o city.json
//	worldgen -scenario metro -schools 1200 -workers 8 -format bin -o metro.world
//
// With -workers N (N >= 1) the world is built by the sharded streaming
// generator: bit-identical output at any worker count, CSR graph built
// directly, no mutable graph in memory. Without -workers (or -workers 0)
// the legacy sequential generator runs; the two produce different (but each
// fully deterministic) world families for the same seed, so pick one per
// dataset and stay with it.
//
// File output is atomic (temp file + rename): a failed run leaves no
// truncated or empty snapshot behind.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hsprofiler/internal/worldgen"
)

func main() {
	scenario := flag.String("scenario", "hs1", "world scenario: hs1, hs2, hs3, tiny, city, metro")
	seed := flag.Uint64("seed", 2013, "generation seed")
	out := flag.String("o", "", "output file (default stdout)")
	format := flag.String("format", worldgen.FormatJSON, "snapshot format: json or bin")
	schools := flag.Int("schools", 3, "number of schools (city and metro scenarios)")
	workers := flag.Int("workers", 0, "parallel generation with this many workers (0 = legacy sequential generator)")
	stats := flag.Bool("stats", false, "print calibration statistics and timings to stderr")
	flag.Parse()

	var cfg worldgen.Config
	switch *scenario {
	case "hs1":
		cfg = worldgen.HS1Config()
	case "hs2":
		cfg = worldgen.HS2Config()
	case "hs3":
		cfg = worldgen.HS3Config()
	case "tiny":
		cfg = worldgen.TinyConfig()
	case "city":
		cfg = worldgen.CityConfig(*schools)
	case "metro":
		cfg = worldgen.MetroConfig(*schools)
	default:
		fmt.Fprintf(os.Stderr, "worldgen: unknown scenario %q\n", *scenario)
		os.Exit(2)
	}
	if *format != worldgen.FormatJSON && *format != worldgen.FormatBinary {
		fmt.Fprintf(os.Stderr, "worldgen: unknown format %q (want %q or %q)\n", *format, worldgen.FormatJSON, worldgen.FormatBinary)
		os.Exit(2)
	}

	genStart := time.Now()
	var w *worldgen.World
	var err error
	if *workers > 0 {
		w, err = worldgen.GenerateParallel(cfg, *seed, *workers)
	} else {
		w, err = worldgen.Generate(cfg, *seed)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "worldgen: %v\n", err)
		os.Exit(1)
	}
	genDur := time.Since(genStart)

	if *stats {
		frozen := w.Frozen()
		fmt.Fprintf(os.Stderr, "generated %d people, %d accounts, %d friendships in %s\n",
			len(w.People), frozen.NumUsers(), frozen.NumEdges(), genDur.Round(time.Millisecond))
		for i, s := range w.Schools {
			st := w.SchoolStats(i)
			fmt.Fprintf(os.Stderr, "%s (%s): students=%d onOSN=%d regAdults=%d minimal=%d alumni=%d former=%d avgDegree=%.0f\n",
				s.Name, s.City, st.Students, st.StudentsOnOSN, st.RegisteredAdults,
				st.MinimalProfiles, st.Alumni, st.FormerStudents, st.AvgStudentDegree)
			if i >= 4 && len(w.Schools) > 5 {
				fmt.Fprintf(os.Stderr, "... and %d more schools\n", len(w.Schools)-5)
				break
			}
		}
	}

	writeStart := time.Now()
	if *out != "" {
		err = w.WriteFile(*out, *format)
	} else if *format == worldgen.FormatBinary {
		err = w.WriteBinary(os.Stdout)
	} else {
		err = w.WriteJSON(os.Stdout)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "worldgen: %v\n", err)
		os.Exit(1)
	}
	if *stats && *out != "" {
		if st, err := os.Stat(*out); err == nil {
			fmt.Fprintf(os.Stderr, "wrote %s (%d bytes, %s) in %s\n",
				*out, st.Size(), *format, time.Since(writeStart).Round(time.Millisecond))
		}
	}
}
