// Command worldgen generates a synthetic world and writes it as JSON.
//
// Usage:
//
//	worldgen -scenario hs1 -seed 2013 -o hs1.json
//	worldgen -scenario city -schools 4 -o city.json
package main

import (
	"flag"
	"fmt"
	"os"

	"hsprofiler/internal/worldgen"
)

func main() {
	scenario := flag.String("scenario", "hs1", "world scenario: hs1, hs2, hs3, tiny, city")
	seed := flag.Uint64("seed", 2013, "generation seed")
	out := flag.String("o", "", "output file (default stdout)")
	schools := flag.Int("schools", 3, "number of schools (city scenario only)")
	stats := flag.Bool("stats", false, "print calibration statistics to stderr")
	flag.Parse()

	var cfg worldgen.Config
	switch *scenario {
	case "hs1":
		cfg = worldgen.HS1Config()
	case "hs2":
		cfg = worldgen.HS2Config()
	case "hs3":
		cfg = worldgen.HS3Config()
	case "tiny":
		cfg = worldgen.TinyConfig()
	case "city":
		cfg = worldgen.CityConfig(*schools)
	default:
		fmt.Fprintf(os.Stderr, "worldgen: unknown scenario %q\n", *scenario)
		os.Exit(2)
	}

	w, err := worldgen.Generate(cfg, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "worldgen: %v\n", err)
		os.Exit(1)
	}
	if *stats {
		for i, s := range w.Schools {
			st := w.SchoolStats(i)
			fmt.Fprintf(os.Stderr, "%s (%s): students=%d onOSN=%d regAdults=%d minimal=%d alumni=%d former=%d avgDegree=%.0f\n",
				s.Name, s.City, st.Students, st.StudentsOnOSN, st.RegisteredAdults,
				st.MinimalProfiles, st.Alumni, st.FormerStudents, st.AvgStudentDegree)
		}
	}

	var dst *os.File = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "worldgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		dst = f
	}
	if err := w.WriteJSON(dst); err != nil {
		fmt.Fprintf(os.Stderr, "worldgen: %v\n", err)
		os.Exit(1)
	}
}
