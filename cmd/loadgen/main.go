// Command loadgen drives sustained mixed traffic against a live osnd and
// prints a latency/error report.
//
// Open loop (fixed arrival rate — the honest way to measure latency):
//
//	loadgen -url http://127.0.0.1:8080 -rate 2000 -duration 30s
//
// Closed loop (max throughput, the servingbench sweep mode):
//
//	loadgen -url http://127.0.0.1:8080 -workers 8 -duration 10s
//
// The request mix mirrors the paper's crawl composition by default
// (search-light, profile/friend-heavy); tune it with -mix.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"hsprofiler/internal/loadgen"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8080", "osnd base URL")
	rate := flag.Float64("rate", 0, "open-loop arrival rate in requests/sec (0 = closed loop)")
	workers := flag.Int("workers", 4, "closed-loop concurrency (used when -rate is 0)")
	duration := flag.Duration("duration", 10*time.Second, "measured window")
	warmup := flag.Duration("warmup", time.Second, "warmup excluded from stats")
	mixFlag := flag.String("mix", "search=1,profile=8,friends=4", "request mix weights")
	accounts := flag.Int("accounts", 4, "crawler accounts to register")
	targets := flag.Int("targets", 256, "profile IDs to harvest for the target pool")
	school := flag.Int("school", -1, "school id to search (-1 = first listed)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request timeout")
	maxInflight := flag.Int("max-inflight", 512, "open-loop concurrent request cap; arrivals past it are dropped, not delayed")
	seed := flag.Uint64("seed", 1, "deterministic request-pick seed")
	out := flag.String("out", "", "also write the full JSON report to this file")
	flag.Parse()

	mix, err := loadgen.ParseMix(*mixFlag)
	if err != nil {
		fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := loadgen.Run(ctx, loadgen.Config{
		BaseURL:     *url,
		Rate:        *rate,
		Workers:     *workers,
		Duration:    *duration,
		Warmup:      *warmup,
		Mix:         mix,
		Accounts:    *accounts,
		Targets:     *targets,
		SchoolID:    *school,
		Timeout:     *timeout,
		MaxInflight: *maxInflight,
		Seed:        *seed,
	})
	if err != nil {
		fatal(err)
	}
	printReport(rep)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("report -> %s\n", *out)
	}
}

func printReport(rep *loadgen.Report) {
	mode := fmt.Sprintf("closed loop, %d workers", rep.Workers)
	if rep.OpenLoop {
		mode = fmt.Sprintf("open loop, %.0f req/s target", rep.RateTarget)
	}
	fmt.Printf("loadgen: %s against %s, %.1fs window\n", mode, rep.BaseURL, rep.Seconds)
	fmt.Printf("%-10s %10s %12s %9s %9s %9s %9s %9s %8s\n",
		"endpoint", "requests", "rps", "mean", "p50", "p95", "p99", "max", "err%")
	names := make([]string, 0, len(rep.Endpoints))
	for name := range rep.Endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		printRow(name, rep.Endpoints[name])
	}
	printRow("overall", rep.Overall)
	if rep.Dropped > 0 {
		fmt.Printf("dropped %d arrivals at the inflight cap (server could not keep up with the schedule)\n", rep.Dropped)
	}
	if errs := rep.Overall.Errors; len(errs) > 0 {
		fmt.Print("outcomes beyond 200:")
		keys := make([]string, 0, len(errs))
		for k := range errs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf(" %s=%d", k, errs[k])
		}
		fmt.Println()
	}
}

func printRow(name string, e *loadgen.EndpointReport) {
	us := func(v int64) string { return (time.Duration(v) * time.Microsecond).String() }
	fmt.Printf("%-10s %10d %12.1f %9s %9s %9s %9s %9s %7.2f%%\n",
		name, e.Requests, e.RPS, us(e.MeanUs), us(e.P50Us), us(e.P95Us), us(e.P99Us), us(e.MaxUs), 100*e.ErrorRate)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
	os.Exit(1)
}
