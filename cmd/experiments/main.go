// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run table4,fig1
//	experiments -all
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"hsprofiler/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	run := flag.String("run", "", "comma-separated experiment IDs to run")
	all := flag.Bool("all", false, "run every experiment")
	outDir := flag.String("o", "", "also write each experiment's output to <dir>/<id>.txt")
	flag.Parse()

	registry := experiments.All()
	if *list {
		for _, e := range registry {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []experiments.Experiment
	switch {
	case *all:
		selected = registry
	case *run != "":
		for _, id := range strings.Split(*run, ",") {
			e, ok := experiments.Lookup(strings.TrimSpace(id))
			if !ok {
				valid := make([]string, len(registry))
				for i, r := range registry {
					valid[i] = r.ID
				}
				fmt.Fprintf(os.Stderr, "experiments: unknown id %q; valid ids: %s\n", id, strings.Join(valid, ", "))
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}
	lab := experiments.NewLab()
	defer lab.Close()
	for _, e := range selected {
		start := time.Now()
		out, err := e.Run(lab)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("### %s — %s  (%s)\n\n%s\n", e.ID, e.Title, time.Since(start).Round(time.Millisecond), out)
		if *outDir != "" {
			path := filepath.Join(*outDir, e.ID+".txt")
			if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: writing %s: %v\n", path, err)
				os.Exit(1)
			}
		}
	}
}
