// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run table4,fig1
//	experiments -all
//	experiments -all -parallel 4 -workers 8
//
// -workers sets the per-run crawl concurrency (the attack pipeline's
// worker pool; results are identical at any setting), -parallel runs that
// many experiments concurrently over the shared lab. Output order always
// matches selection order.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"hsprofiler/internal/experiments"
)

// outcome is one experiment's buffered result.
type outcome struct {
	out     string
	err     error
	elapsed time.Duration
}

func main() {
	list := flag.Bool("list", false, "list available experiments")
	run := flag.String("run", "", "comma-separated experiment IDs to run")
	all := flag.Bool("all", false, "run every experiment")
	outDir := flag.String("o", "", "also write each experiment's output to <dir>/<id>.txt")
	parallel := flag.Int("parallel", 1, "run up to N experiments concurrently (outputs stay in selection order)")
	workers := flag.Int("workers", 1, "crawl workers per attack run (1 = sequential; results are identical at any setting)")
	flag.Parse()

	registry := experiments.All()
	if *list {
		for _, e := range registry {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []experiments.Experiment
	switch {
	case *all:
		selected = registry
	case *run != "":
		for _, id := range strings.Split(*run, ",") {
			e, ok := experiments.Lookup(strings.TrimSpace(id))
			if !ok {
				valid := make([]string, len(registry))
				for i, r := range registry {
					valid[i] = r.ID
				}
				fmt.Fprintf(os.Stderr, "experiments: unknown id %q; valid ids: %s\n", id, strings.Join(valid, ", "))
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}
	lab := experiments.NewLab()
	defer lab.Close()
	lab.SetWorkers(*workers)

	// Run with bounded concurrency, buffering each experiment's output so
	// the printed report reads the same regardless of completion order.
	width := *parallel
	if width < 1 {
		width = 1
	}
	if width > len(selected) {
		width = len(selected)
	}
	results := make([]outcome, len(selected))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < width; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				start := time.Now()
				out, err := selected[i].Run(lab)
				results[i] = outcome{out: out, err: err, elapsed: time.Since(start)}
			}
		}()
	}
	for i := range selected {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	failed := false
	for i, e := range selected {
		r := results[i]
		if r.err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.ID, r.err)
			failed = true
			continue
		}
		fmt.Printf("### %s — %s  (%s)\n\n%s\n", e.ID, e.Title, r.elapsed.Round(time.Millisecond), r.out)
		if *outDir != "" {
			path := filepath.Join(*outDir, e.ID+".txt")
			if err := os.WriteFile(path, []byte(r.out), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: writing %s: %v\n", path, err)
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}
