package main

import (
	"errors"
	"fmt"
	"time"

	"hsprofiler/internal/osnhttp"
)

// servingFlags groups the flag values that shape the serving plane, split
// out of main so validation is table-testable. The platform's own
// withDefaults silently normalizes negatives for library callers; the
// daemon instead refuses to start — a typo'd deployment flag should be a
// loud failure, not a silently unlimited budget.
type servingFlags struct {
	SearchCap      int
	RequestBudget  int
	ThrottleLimit  int
	ThrottleWindow time.Duration
	FaultRate      float64
	Server         osnhttp.ServerConfig
}

// validate rejects every bad flag at once (joined errors) so a broken
// invocation reports the full list instead of one complaint per restart.
func (f servingFlags) validate() error {
	var errs []error
	if f.SearchCap < 0 {
		errs = append(errs, fmt.Errorf("-search-cap must be non-negative, got %d", f.SearchCap))
	}
	if f.RequestBudget < 0 {
		errs = append(errs, fmt.Errorf("-request-budget must be non-negative, got %d", f.RequestBudget))
	}
	if f.ThrottleLimit < 0 {
		errs = append(errs, fmt.Errorf("-throttle-limit must be non-negative, got %d", f.ThrottleLimit))
	}
	if f.ThrottleWindow <= 0 {
		errs = append(errs, fmt.Errorf("-throttle-window must be positive, got %v", f.ThrottleWindow))
	}
	if f.FaultRate < 0 || f.FaultRate > 1 {
		errs = append(errs, fmt.Errorf("-faults must be in [0,1], got %g", f.FaultRate))
	}
	if err := f.Server.WithDefaults().Validate(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}
