package main

import (
	"errors"
	"fmt"
	"time"

	"hsprofiler/internal/osnhttp"
	"hsprofiler/internal/worldgen"
)

// servingFlags groups the flag values that shape the serving plane, split
// out of main so validation is table-testable. The platform's own
// withDefaults silently normalizes negatives for library callers; the
// daemon instead refuses to start — a typo'd deployment flag should be a
// loud failure, not a silently unlimited budget.
type servingFlags struct {
	SearchCap      int
	RequestBudget  int
	ThrottleLimit  int
	ThrottleWindow time.Duration
	FaultRate      float64
	Server         osnhttp.ServerConfig
	Evolve         evolveFlags
	Admin          adminFlags
}

// adminFlags shape the defender's watchtower: -admin turns on behavioral
// telemetry recording, the /api/v1/admin/telemetry endpoint, and the
// background aggregator.
type adminFlags struct {
	Enabled bool
	// TelemetryWindow is the per-account feature window; features
	// aggregate over the current + previous window.
	TelemetryWindow time.Duration
	// TelemetryRollup is the aggregator's publish interval.
	TelemetryRollup time.Duration
}

// evolveFlags shape the temporal loop: with -evolve the daemon advances the
// world one simulated year per interval and rotates the serving epoch.
type evolveFlags struct {
	Enabled  bool
	Interval time.Duration
	// Epochs bounds how many rotations run (0 = until shutdown).
	Epochs  int
	Workers int
	// OpenMinorSearchYear schedules the policy flip that opened minor
	// profiles to search: once the simulated year reaches it, the next
	// epoch builds with MinorsSearchable=true (0 = never).
	OpenMinorSearchYear int
}

// validate rejects every bad flag at once (joined errors) so a broken
// invocation reports the full list instead of one complaint per restart.
func (f servingFlags) validate() error {
	var errs []error
	if f.SearchCap < 0 {
		errs = append(errs, fmt.Errorf("-search-cap must be non-negative, got %d", f.SearchCap))
	}
	if f.RequestBudget < 0 {
		errs = append(errs, fmt.Errorf("-request-budget must be non-negative, got %d", f.RequestBudget))
	}
	if f.ThrottleLimit < 0 {
		errs = append(errs, fmt.Errorf("-throttle-limit must be non-negative, got %d", f.ThrottleLimit))
	}
	if f.ThrottleWindow <= 0 {
		errs = append(errs, fmt.Errorf("-throttle-window must be positive, got %v", f.ThrottleWindow))
	}
	if f.FaultRate < 0 || f.FaultRate > 1 {
		errs = append(errs, fmt.Errorf("-faults must be in [0,1], got %g", f.FaultRate))
	}
	if err := f.Server.WithDefaults().Validate(); err != nil {
		errs = append(errs, err)
	}
	if f.Admin.Enabled {
		if f.Admin.TelemetryWindow <= 0 {
			errs = append(errs, fmt.Errorf("-telemetry-window must be positive, got %v", f.Admin.TelemetryWindow))
		}
		if f.Admin.TelemetryRollup <= 0 {
			errs = append(errs, fmt.Errorf("-telemetry-rollup must be positive, got %v", f.Admin.TelemetryRollup))
		}
	}
	if f.Evolve.Enabled {
		if f.Evolve.Interval <= 0 {
			errs = append(errs, fmt.Errorf("-evolve-interval must be positive, got %v", f.Evolve.Interval))
		}
		if f.Evolve.Epochs < 0 {
			errs = append(errs, fmt.Errorf("-evolve-epochs must be non-negative (0 = until shutdown), got %d", f.Evolve.Epochs))
		}
		if f.Evolve.Workers < 1 {
			errs = append(errs, fmt.Errorf("-evolve-workers must be at least 1, got %d", f.Evolve.Workers))
		}
		if f.Evolve.OpenMinorSearchYear < 0 {
			errs = append(errs, fmt.Errorf("-evolve-open-minor-search must be a year (0 = never), got %d", f.Evolve.OpenMinorSearchYear))
		}
	}
	return errors.Join(errs...)
}

// validateWorld rejects flag/world combinations that could otherwise only
// fail (or worse, panic) mid-serve. It runs after the world loads, in the
// same loud-failure spirit as validate. Since the evolution step learned to
// patch the CSR snapshot directly, frozen-only worlds (binary snapshots,
// parallel generation) evolve like any other — there is currently nothing
// to reject, but the hook stays so future world-shape constraints have a
// home.
func (f servingFlags) validateWorld(w *worldgen.World) error {
	return nil
}
