// Command osnd serves a world as the simulated OSN over HTTP.
//
// Usage:
//
//	osnd -world hs1.json -addr :8080
//	osnd -scenario hs1 -addr :8080 -policy googleplus
//	osnd -scenario hs1 -no-reverse-lookup   # the §8 countermeasure
//	osnd -scenario hs1 -faults 0.1          # serve a hostile platform
//	osnd -scenario hs1 -metrics-addr :9090  # Prometheus /metrics + pprof
//	osnd -scenario hs1 -manifest-out run.json  # provenance record on shutdown
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hsprofiler/internal/faults"
	"hsprofiler/internal/obs"
	"hsprofiler/internal/obs/evlog"
	"hsprofiler/internal/osn"
	"hsprofiler/internal/osn/telemetry"
	"hsprofiler/internal/osnhttp"
	"hsprofiler/internal/worldgen"
)

func main() {
	worldFile := flag.String("world", "", "world snapshot file (from cmd/worldgen; JSON or binary, sniffed)")
	scenario := flag.String("scenario", "", "generate a scenario instead of loading: hs1, hs2, hs3, tiny")
	seed := flag.Uint64("seed", 2013, "seed when generating")
	addr := flag.String("addr", ":8080", "listen address")
	policy := flag.String("policy", "facebook", "platform policy: facebook, googleplus")
	noReverse := flag.Bool("no-reverse-lookup", false, "enable the Section 8 countermeasure")
	searchCap := flag.Int("search-cap", 400, "max search results per account")
	budget := flag.Int("request-budget", 0, "per-account request ceiling before suspension (0 = unlimited)")
	throttleLimit := flag.Int("throttle-limit", 0, "per-account requests allowed per throttle window (0 = no throttling)")
	throttleWindow := flag.Duration("throttle-window", time.Minute, "sliding window for -throttle-limit")
	faultRate := flag.Float64("faults", 0, "composite fault-injection rate in [0,1], split evenly across 5xx, spurious throttles, connection resets, truncated and garbled pages (0 = off)")
	faultSeed := flag.Uint64("fault-seed", 1, "fault injector seed (same seed + same request sequence = same faults)")
	faultLatency := flag.Duration("fault-latency", 0, "max injected latency; applied to roughly a quarter of requests (0 = off)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics, JSON /metrics.json, /healthz and net/http/pprof on this address (empty = disabled)")
	manifestOut := flag.String("manifest-out", "", "write a JSON run manifest (params, freeze-phase timing, request counters) to this file on shutdown")
	eventsOut := flag.String("events-out", "", "write the structured event log (JSONL: access log, policy gates, account transitions, injected faults) to this file")
	readHeaderTimeout := flag.Duration("read-header-timeout", 5*time.Second, "serving listener: max time to read a request header")
	readTimeout := flag.Duration("read-timeout", 15*time.Second, "serving listener: max time to read a full request")
	writeTimeout := flag.Duration("write-timeout", 30*time.Second, "serving listener: max time to write a response")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "serving listener: keep-alive idle connection timeout")
	shutdownGrace := flag.Duration("shutdown-grace", 10*time.Second, "max time to wait for inflight requests on SIGTERM before abandoning them")
	inflightSearch := flag.Int("inflight-search", 0, "max concurrent search requests; excess shed with 503 (0 = unlimited)")
	inflightProfile := flag.Int("inflight-profile", 0, "max concurrent profile requests; excess shed with 503 (0 = unlimited)")
	inflightFriends := flag.Int("inflight-friends", 0, "max concurrent friend-list requests; excess shed with 503 (0 = unlimited)")
	evolve := flag.Bool("evolve", false, "advance the world one simulated year per -evolve-interval and rotate the serving epoch incrementally (works on any world, including frozen-only binary snapshots)")
	evolveInterval := flag.Duration("evolve-interval", 30*time.Second, "wall-clock time per simulated year under -evolve")
	evolveEpochs := flag.Int("evolve-epochs", 0, "stop evolving after this many epochs (0 = until shutdown)")
	evolveWorkers := flag.Int("evolve-workers", 4, "worker goroutines for the evolution step (any count yields bit-identical worlds)")
	evolveOpenMinorSearch := flag.Int("evolve-open-minor-search", 0, "simulated year at which the policy flips to list minors in search, like Facebook in 2013 (0 = never)")
	admin := flag.Bool("admin", false, "enable behavioral telemetry and the /api/v1/admin/telemetry introspection endpoint (excluded from fault injection like /healthz)")
	telemetryWindow := flag.Duration("telemetry-window", time.Minute, "per-account telemetry window length under -admin; features aggregate over the current + previous window")
	telemetryRollup := flag.Duration("telemetry-rollup", 10*time.Second, "how often the telemetry aggregator publishes osn_telemetry_* series and osn.telemetry events under -admin")
	flag.Parse()

	sf := servingFlags{
		SearchCap:      *searchCap,
		RequestBudget:  *budget,
		ThrottleLimit:  *throttleLimit,
		ThrottleWindow: *throttleWindow,
		FaultRate:      *faultRate,
		Admin: adminFlags{
			Enabled:         *admin,
			TelemetryWindow: *telemetryWindow,
			TelemetryRollup: *telemetryRollup,
		},
		Evolve: evolveFlags{
			Enabled:             *evolve,
			Interval:            *evolveInterval,
			Epochs:              *evolveEpochs,
			Workers:             *evolveWorkers,
			OpenMinorSearchYear: *evolveOpenMinorSearch,
		},
		Server: osnhttp.ServerConfig{
			ReadHeaderTimeout: *readHeaderTimeout,
			ReadTimeout:       *readTimeout,
			WriteTimeout:      *writeTimeout,
			IdleTimeout:       *idleTimeout,
			ShutdownGrace:     *shutdownGrace,
			SearchInflight:    *inflightSearch,
			ProfileInflight:   *inflightProfile,
			FriendInflight:    *inflightFriends,
		},
	}
	if err := sf.validate(); err != nil {
		fatal(err)
	}
	serverCfg := sf.Server.WithDefaults()

	var w *worldgen.World
	var err error
	switch {
	case *worldFile != "":
		w, err = worldgen.ReadSnapshotFile(*worldFile)
	case *scenario != "":
		var cfg worldgen.Config
		switch *scenario {
		case "hs1":
			cfg = worldgen.HS1Config()
		case "hs2":
			cfg = worldgen.HS2Config()
		case "hs3":
			cfg = worldgen.HS3Config()
		case "tiny":
			cfg = worldgen.TinyConfig()
		default:
			fatal(fmt.Errorf("unknown scenario %q", *scenario))
		}
		w, err = worldgen.Generate(cfg, *seed)
	default:
		err = fmt.Errorf("one of -world or -scenario is required")
	}
	if err != nil {
		fatal(err)
	}
	if err := sf.validateWorld(w); err != nil {
		fatal(err)
	}

	var pol *osn.Policy
	switch *policy {
	case "facebook":
		pol = osn.Facebook()
	case "googleplus":
		pol = osn.GooglePlus()
	default:
		fatal(fmt.Errorf("unknown policy %q", *policy))
	}
	if *noReverse {
		pol.HiddenListsInReverseLookup = false
	}

	// The registry and trace exist whenever any observability output wants
	// them; nil keeps the obs layer a no-op otherwise.
	var reg *obs.Registry
	if *metricsAddr != "" || *manifestOut != "" {
		reg = obs.NewRegistry()
	}
	// The event log narrates the serving path: per-request access log,
	// policy-gate denials, account throttle/suspension transitions, injected
	// faults. Shard-contention debug events are sampled 1-in-100 — under a
	// parallel crawl they would otherwise dominate the log.
	var lg *evlog.Logger
	var eventsFile *os.File
	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			fatal(err)
		}
		eventsFile = f
		lg = evlog.New(evlog.Options{Sink: f, Sample: map[string]int{"osn.shard": 100}})
	}
	ctx := context.Background()
	var tr *obs.Trace
	if *manifestOut != "" {
		tr = obs.NewTrace("osnd")
		ctx = tr.Context(ctx)
	}

	// Building the platform under the trace records the construction-time
	// freeze (the read-plane snapshot) as its own phase, so the manifest
	// separates freeze cost from serving; Instrument registers the
	// per-plane request and per-shard contention series on /metrics.
	platform := osn.NewPlatformContext(ctx, w, pol, osn.Config{
		SearchPerAccount: *searchCap,
		RequestBudget:    *budget,
		ThrottleLimit:    *throttleLimit,
		ThrottleWindow:   *throttleWindow,
	}).Instrument(reg).WithLog(lg)
	// The defender's watchtower: -admin attaches the behavioral telemetry
	// table to the serving path and a background aggregator that publishes
	// per-account crawler-likeness features as metrics and events.
	var tel *telemetry.Table
	var agg *telemetry.Aggregator
	if sf.Admin.Enabled {
		tel = telemetry.NewTable(sf.Admin.TelemetryWindow)
		platform.WithTelemetry(tel)
		agg = telemetry.NewAggregator(tel, telemetry.AggregatorOptions{
			Interval: sf.Admin.TelemetryRollup,
			Registry: reg,
			Log:      lg,
		})
		agg.Start()
		fmt.Printf("osnd: admin telemetry on /api/v1/admin/telemetry (window %v, rollup %v)\n",
			sf.Admin.TelemetryWindow, sf.Admin.TelemetryRollup)
	}
	for _, s := range platform.Schools() {
		fmt.Printf("serving school %q (%s)\n", s.Name, s.City)
	}
	fmt.Printf("osnd: %s policy on %s (read plane frozen in %s)\n", pol.Name, *addr, platform.FreezeDuration().Round(time.Millisecond))
	if lg != nil {
		fmt.Printf("osnd: event log -> %s\n", *eventsOut)
	}
	// The injector's middleware wraps outside the instrumented server, so
	// injected 503s land in faults_injected_total, not in the platform's
	// own throttle series.
	server := osnhttp.NewServer(platform).Instrument(reg).WithLog(lg).
		WithLimits(*inflightSearch, *inflightProfile, *inflightFriends).
		WithTelemetry(tel)
	var handler http.Handler = server
	var injector *faults.Injector
	if *faultRate > 0 || *faultLatency > 0 {
		cfg := faults.Composite(*faultRate, *faultSeed)
		if *faultLatency > 0 {
			cfg.Latency = 0.25
			cfg.MaxLatency = *faultLatency
		}
		injector = faults.New(cfg).Instrument(reg).WithLog(lg)
		faulty := injector.Middleware(handler)
		// The load balancer's liveness probe must stay reliable even on a
		// deliberately hostile platform, so /healthz bypasses the injector —
		// and so does the admin introspection surface: the defender's view
		// of a hostile platform must not itself be hostile.
		handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/healthz" || strings.HasPrefix(r.URL.Path, "/api/v1/admin/") {
				server.ServeHTTP(w, r)
				return
			}
			faulty.ServeHTTP(w, r)
		})
		rate := cfg.ServerError + cfg.Throttle + cfg.Reset + cfg.Truncate + cfg.Garble
		fmt.Printf("osnd: injecting faults at rate %.2f (seed %d)\n", rate, *faultSeed)
	}

	// The temporal loop: one simulated year per interval, then an epoch
	// swap. Mutation runs entirely off the read path — serving continues on
	// the previous epoch until AdvanceEpoch publishes the next one.
	if sf.Evolve.Enabled {
		fmt.Printf("osnd: evolving every %v (epochs: %s, workers: %d)\n",
			sf.Evolve.Interval, epochBound(sf.Evolve.Epochs), sf.Evolve.Workers)
		go func() {
			ev := worldgen.NewEvolver(worldgen.DefaultEvolveConfig(), sf.Evolve.Workers)
			cur := pol
			ticker := time.NewTicker(sf.Evolve.Interval)
			defer ticker.Stop()
			for epoch := 1; sf.Evolve.Epochs == 0 || epoch <= sf.Evolve.Epochs; epoch++ {
				<-ticker.C
				d, err := ev.Step(w, epoch)
				if err != nil {
					fmt.Fprintf(os.Stderr, "osnd: evolve: %v\n", err)
					return
				}
				if y := sf.Evolve.OpenMinorSearchYear; y != 0 && w.Now.Year >= y && !cur.MinorsSearchable {
					flipped := *cur
					flipped.Name = cur.Name + "+minors-searchable"
					flipped.MinorsSearchable = true
					cur = &flipped
					platform.SetPolicy(cur)
					fmt.Printf("osnd: year %d: policy flip, minors now searchable\n", w.Now.Year)
				}
				st := platform.AdvanceEpochDelta(ctx, d)
				mode := "full"
				if st.Incremental {
					mode = "incremental"
				}
				fmt.Printf("osnd: epoch %d (year %d): +%d/-%d edges, graduated %d, built in %s (%s, swap %s)\n",
					st.Seq, st.Year, len(d.Added), len(d.Removed), d.Graduated,
					st.Build.Round(time.Millisecond), mode, st.Swap.Round(10*time.Microsecond))
			}
		}()
	}

	srv := serverCfg.HTTPServer(*addr, handler)

	var metricsSrv *http.Server
	if reg != nil {
		metricsSrv = &http.Server{
			Addr:              *metricsAddr,
			Handler:           metricsMux(reg),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			if err := metricsSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "osnd: metrics server: %v\n", err)
			}
		}()
		fmt.Printf("osnd: metrics on %s (/metrics, /metrics.json, /healthz, /debug/pprof/)\n", *metricsAddr)
	}

	// Graceful shutdown on SIGINT/SIGTERM; the metrics server drains with
	// the platform so a final scrape can still land during shutdown.
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	case s := <-sig:
		fmt.Printf("osnd: %v, draining (up to %v for %d inflight)\n", s, serverCfg.ShutdownGrace, server.Inflight())
		remaining, err := serverCfg.Drain(srv, server)
		if remaining > 0 || err != nil {
			fmt.Fprintf(os.Stderr, "osnd: drain incomplete: %d requests abandoned (%v)\n", remaining, err)
		} else {
			fmt.Println("osnd: drained cleanly")
		}
	}
	if metricsSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		metricsSrv.Shutdown(ctx)
	}
	// Final telemetry rollup before the event log closes: a run shorter
	// than one rollup interval still publishes its defender view.
	if agg != nil {
		agg.Stop()
	}
	if injector != nil {
		fmt.Printf("osnd: %s\n", injector.Stats())
	}
	if eventsFile != nil {
		if err := eventsFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "osnd: event log: %v\n", err)
		} else {
			fmt.Printf("osnd: %d events logged (%d sampled away) -> %s\n",
				lg.Events(), lg.Sampled(), *eventsOut)
		}
	}
	if *manifestOut != "" {
		writeManifest(*manifestOut, tr, reg, map[string]any{
			"addr": *addr, "policy": pol.Name, "scenario": *scenario, "world": *worldFile,
			"search-cap": *searchCap, "request-budget": *budget,
			"throttle-limit": *throttleLimit, "throttle-window": throttleWindow.String(),
			"faults": *faultRate, "admin": sf.Admin.Enabled,
		})
	}
}

// writeManifest dumps the serve run's manifest: flags, the osn.freeze span
// as a phase, and the final counter values (plane request totals, shard
// contention, faults).
func writeManifest(path string, tr *obs.Trace, reg *obs.Registry, params map[string]any) {
	tr.Finish()
	m := obs.NewManifest("osnd")
	for k, v := range params {
		m.SetParam(k, v)
	}
	m.AddTrace(tr)
	m.AddCounters(reg)
	m.Finish()
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := m.WriteJSON(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("osnd: manifest -> %s\n", path)
}

// metricsMux assembles the observability endpoint: Prometheus exposition,
// a JSON health probe, and the standard pprof handlers.
func metricsMux(reg *obs.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/metrics.json", reg.JSONHandler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"status\":\"ok\",\"uptime_seconds\":%.0f}\n", time.Since(startTime).Seconds())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

var startTime = time.Now()

// epochBound renders the -evolve-epochs bound for the startup banner.
func epochBound(n int) string {
	if n == 0 {
		return "unbounded"
	}
	return fmt.Sprintf("%d", n)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "osnd: %v\n", err)
	os.Exit(1)
}
