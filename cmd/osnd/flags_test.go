package main

import (
	"hsprofiler/internal/worldgen"
	"strings"
	"testing"
	"time"

	"hsprofiler/internal/osnhttp"
)

// goodFlags is a baseline invocation that must validate.
func goodFlags() servingFlags {
	return servingFlags{
		SearchCap:      400,
		RequestBudget:  0,
		ThrottleLimit:  0,
		ThrottleWindow: 15 * time.Minute,
		FaultRate:      0,
		Server:         osnhttp.DefaultServerConfig(),
	}
}

func TestServingFlagsValidate(t *testing.T) {
	if err := goodFlags().validate(); err != nil {
		t.Fatalf("baseline flags rejected: %v", err)
	}

	cases := []struct {
		name string
		mut  func(*servingFlags)
		want string
	}{
		{"negative search cap", func(f *servingFlags) { f.SearchCap = -1 }, "-search-cap"},
		{"negative request budget", func(f *servingFlags) { f.RequestBudget = -5 }, "-request-budget"},
		{"negative throttle limit", func(f *servingFlags) { f.ThrottleLimit = -2 }, "-throttle-limit"},
		{"zero throttle window", func(f *servingFlags) { f.ThrottleWindow = 0 }, "-throttle-window"},
		{"negative throttle window", func(f *servingFlags) { f.ThrottleWindow = -time.Second }, "-throttle-window"},
		{"fault rate above 1", func(f *servingFlags) { f.FaultRate = 1.5 }, "-faults"},
		{"negative fault rate", func(f *servingFlags) { f.FaultRate = -0.1 }, "-faults"},
		{"negative server timeout", func(f *servingFlags) { f.Server.ReadTimeout = -time.Second }, "read timeout"},
		{"negative inflight cap", func(f *servingFlags) { f.Server.SearchInflight = -8 }, "search inflight"},
	}
	for _, tc := range cases {
		f := goodFlags()
		tc.mut(&f)
		err := f.validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestServingFlagsJoinAll checks a pile of bad flags is reported in one
// pass, not one complaint per restart.
func TestServingFlagsJoinAll(t *testing.T) {
	f := goodFlags()
	f.SearchCap = -1
	f.ThrottleWindow = 0
	f.FaultRate = 2
	f.Server.WriteTimeout = -1
	err := f.validate()
	if err == nil {
		t.Fatal("accepted")
	}
	for _, want := range []string{"-search-cap", "-throttle-window", "-faults", "write timeout"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error lost %q: %v", want, err)
		}
	}
}

// TestServingFlagsZeroServerConfig checks an all-zero ServerConfig (flags
// left at package defaults elsewhere) is filled rather than rejected.
func TestServingFlagsZeroServerConfig(t *testing.T) {
	f := goodFlags()
	f.Server = osnhttp.ServerConfig{}
	if err := f.validate(); err != nil {
		t.Fatalf("zero ServerConfig rejected (WithDefaults not applied): %v", err)
	}
}

func TestAdminFlagsValidate(t *testing.T) {
	f := goodFlags()
	f.Admin = adminFlags{Enabled: true, TelemetryWindow: time.Minute, TelemetryRollup: 10 * time.Second}
	if err := f.validate(); err != nil {
		t.Fatalf("baseline admin flags rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*servingFlags)
		want string
	}{
		{"zero window", func(f *servingFlags) { f.Admin.TelemetryWindow = 0 }, "-telemetry-window"},
		{"negative window", func(f *servingFlags) { f.Admin.TelemetryWindow = -time.Second }, "-telemetry-window"},
		{"zero rollup", func(f *servingFlags) { f.Admin.TelemetryRollup = 0 }, "-telemetry-rollup"},
	}
	for _, tc := range cases {
		f := goodFlags()
		f.Admin = adminFlags{Enabled: true, TelemetryWindow: time.Minute, TelemetryRollup: 10 * time.Second}
		tc.mut(&f)
		err := f.validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// Admin disabled: the sub-flags are ignored, not validated.
	f = goodFlags()
	f.Admin = adminFlags{Enabled: false, TelemetryWindow: 0, TelemetryRollup: 0}
	if err := f.validate(); err != nil {
		t.Fatalf("disabled admin flags validated anyway: %v", err)
	}
}

// goodEvolveFlags is a baseline -evolve invocation.
func goodEvolveFlags() servingFlags {
	f := goodFlags()
	f.Evolve = evolveFlags{Enabled: true, Interval: 30 * time.Second, Epochs: 3, Workers: 4}
	return f
}

func TestEvolveFlagsValidate(t *testing.T) {
	if err := goodEvolveFlags().validate(); err != nil {
		t.Fatalf("baseline evolve flags rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*servingFlags)
		want string
	}{
		{"zero interval", func(f *servingFlags) { f.Evolve.Interval = 0 }, "-evolve-interval"},
		{"negative interval", func(f *servingFlags) { f.Evolve.Interval = -time.Second }, "-evolve-interval"},
		{"negative epochs", func(f *servingFlags) { f.Evolve.Epochs = -1 }, "-evolve-epochs"},
		{"zero workers", func(f *servingFlags) { f.Evolve.Workers = 0 }, "-evolve-workers"},
		{"negative flip year", func(f *servingFlags) { f.Evolve.OpenMinorSearchYear = -2013 }, "-evolve-open-minor-search"},
	}
	for _, tc := range cases {
		f := goodEvolveFlags()
		tc.mut(&f)
		err := f.validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// Evolve disabled: the sub-flags are ignored, not validated.
	f := goodFlags()
	f.Evolve = evolveFlags{Enabled: false, Interval: 0, Workers: 0}
	if err := f.validate(); err != nil {
		t.Fatalf("disabled evolve flags validated anyway: %v", err)
	}
}

// TestValidateWorldAcceptsFrozenOnly: evolution now patches the CSR
// snapshot directly, so -evolve against a world without a mutable graph
// (binary snapshot, parallel generation) is the supported metro-scale
// temporal path, not an error.
func TestValidateWorldAcceptsFrozenOnly(t *testing.T) {
	w, err := worldgen.Generate(worldgen.TinyConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := goodEvolveFlags().validateWorld(w); err != nil {
		t.Fatalf("mutable world rejected: %v", err)
	}
	frozen := &worldgen.World{Seed: w.Seed, Now: w.Now, Schools: w.Schools, People: w.People}
	frozen.SetFrozen(w.Frozen())
	if err := goodEvolveFlags().validateWorld(frozen); err != nil {
		t.Fatalf("frozen-only world rejected with -evolve: %v", err)
	}
	if err := goodFlags().validateWorld(frozen); err != nil {
		t.Fatalf("frozen-only world rejected without -evolve: %v", err)
	}
}
