package main

import (
	"strings"
	"testing"
	"time"

	"hsprofiler/internal/osnhttp"
)

// goodFlags is a baseline invocation that must validate.
func goodFlags() servingFlags {
	return servingFlags{
		SearchCap:      400,
		RequestBudget:  0,
		ThrottleLimit:  0,
		ThrottleWindow: 15 * time.Minute,
		FaultRate:      0,
		Server:         osnhttp.DefaultServerConfig(),
	}
}

func TestServingFlagsValidate(t *testing.T) {
	if err := goodFlags().validate(); err != nil {
		t.Fatalf("baseline flags rejected: %v", err)
	}

	cases := []struct {
		name string
		mut  func(*servingFlags)
		want string
	}{
		{"negative search cap", func(f *servingFlags) { f.SearchCap = -1 }, "-search-cap"},
		{"negative request budget", func(f *servingFlags) { f.RequestBudget = -5 }, "-request-budget"},
		{"negative throttle limit", func(f *servingFlags) { f.ThrottleLimit = -2 }, "-throttle-limit"},
		{"zero throttle window", func(f *servingFlags) { f.ThrottleWindow = 0 }, "-throttle-window"},
		{"negative throttle window", func(f *servingFlags) { f.ThrottleWindow = -time.Second }, "-throttle-window"},
		{"fault rate above 1", func(f *servingFlags) { f.FaultRate = 1.5 }, "-faults"},
		{"negative fault rate", func(f *servingFlags) { f.FaultRate = -0.1 }, "-faults"},
		{"negative server timeout", func(f *servingFlags) { f.Server.ReadTimeout = -time.Second }, "read timeout"},
		{"negative inflight cap", func(f *servingFlags) { f.Server.SearchInflight = -8 }, "search inflight"},
	}
	for _, tc := range cases {
		f := goodFlags()
		tc.mut(&f)
		err := f.validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestServingFlagsJoinAll checks a pile of bad flags is reported in one
// pass, not one complaint per restart.
func TestServingFlagsJoinAll(t *testing.T) {
	f := goodFlags()
	f.SearchCap = -1
	f.ThrottleWindow = 0
	f.FaultRate = 2
	f.Server.WriteTimeout = -1
	err := f.validate()
	if err == nil {
		t.Fatal("accepted")
	}
	for _, want := range []string{"-search-cap", "-throttle-window", "-faults", "write timeout"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error lost %q: %v", want, err)
		}
	}
}

// TestServingFlagsZeroServerConfig checks an all-zero ServerConfig (flags
// left at package defaults elsewhere) is filled rather than rejected.
func TestServingFlagsZeroServerConfig(t *testing.T) {
	f := goodFlags()
	f.Server = osnhttp.ServerConfig{}
	if err := f.validate(); err != nil {
		t.Fatalf("zero ServerConfig rejected (WithDefaults not applied): %v", err)
	}
}
